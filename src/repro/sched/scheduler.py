"""The CROPHE scheduling algorithm (paper Section V-D).

Bottom-up composition with dynamic programming:

1. enumerate candidate spatial groups as contiguous windows (size up to
   ``max_group_size``) of the topological order, with one
   :class:`~repro.sched.dataflow.SpatialGroupPlan` per (window structure,
   NTT split) pair — plans for structurally identical windows are
   memoized by signature (the paper's redundant-subgraph merging);
2. dynamic programming over the topological order picks the window
   sequence minimizing end-to-end time under the analytical cost model;
3. consecutive steps keep boundary tensors SRAM-resident when they fit
   (temporal pipelining) and keep constants on-chip across steps
   (temporal sharing), which the DP transition prices in.

The paper searches all subgraphs of a pre-partitioned graph exhaustively
(100 CPU-hours for ResNet-20); contiguous-window DP with memoization is
the tractable restriction we ship, with the window size and split
candidates exposed as knobs.

Resilience (see :mod:`repro.resilience`): knobs are validated at
construction time, the DP runs under optional wall-clock/node budgets,
and on budget exhaustion or an infeasible cover the scheduler degrades
to a deterministic greedy fallback (MAD-style fusion windows) instead of
hanging or dying — the result is tagged ``degraded=True`` with the
reason. A checkpoint path makes the DP search resumable: per-window
best covers are serialized so an interrupted search continues instead
of restarting.
"""

from __future__ import annotations

import time as _time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # CKKSParams is annotation-only here (no import cycle).
    from repro.fhe.params import CKKSParams

from repro.hw.config import HardwareConfig
from repro.ir.graph import OperatorGraph
from repro.ir.loops import LoopNest, matched_prefix, power_of_two_splits
from repro.ir.operators import Operator, OpKind
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.tracer import span as _span
from repro.resilience.budget import BudgetMeter, SearchBudget
from repro.resilience.checkpoint import SearchCheckpoint, search_fingerprint
from repro.resilience.errors import (
    ConfigError,
    InfeasibleScheduleError,
    InvariantViolation,
    SearchBudgetExceeded,
)
from repro.sched.cost_model import GroupPricing, vector_pricing_enabled
from repro.sched.dataflow import Schedule, ScheduledStep, SpatialGroupPlan
from repro.sched.plan_memo import (
    MEMO as _PLAN_MEMO,
    PlanSkeleton,
    instantiate as _instantiate,
    memo_enabled,
)

#: Fusion depth of the greedy fallback scheduler (MAD-style windows).
GREEDY_FALLBACK_WINDOW = 4


@dataclass(frozen=True)
class SchedulerConfig:
    """Search knobs.

    Attributes:
        max_group_size: largest spatial group considered (paper: 7-10).
        keep_fraction: fraction of SRAM a step may use to keep outputs
            resident for the next step.
        constant_residency_fraction: SRAM fraction reserved for constants
            held across steps (temporal sharing).
        min_ntt_tile: smallest N1/N2 tile for decomposed NTTs (tiles must
            still fill the PE lanes, Section V-D).
        constant_share: number of data-parallel clusters sharing each
            constant fetch (CROPHE-p); 1 for a whole-chip schedule.
    """

    max_group_size: int = 7
    keep_fraction: float = 0.5
    constant_residency_fraction: float = 0.4
    min_ntt_tile: int = 64
    constant_share: int = 1
    #: Workload segments are windows of one continuous program: their
    #: ciphertext inputs arrive SRAM-resident from the previous segment
    #: and their outputs stay on-chip for the next one (budget allowing).
    chained_io: bool = True
    #: Fine-grained temporal pipelining between consecutive groups: a
    #: boundary tensor whose producer/consumer loop nests share top loops
    #: streams through a granule-sized SRAM FIFO instead of spilling.
    #: CROPHE's middle hierarchy level; off for MAD (its fusion islands
    #: spill between groups).
    temporal_streaming: bool = True
    #: How many groups a deferred tensor may wait, holding only its
    #: granule, before a streamable consumer must arrive (the depth of a
    #: temporal pipelining group).  1 = adjacent groups only.
    stream_window: int = 6
    #: Wall-clock budget for one DP search (None = unbounded).
    max_search_seconds: Optional[float] = None
    #: DP-transition budget for one search (None = unbounded).
    max_search_nodes: Optional[int] = None
    #: On budget exhaustion, degrade to the greedy fallback (True) or
    #: raise :class:`SearchBudgetExceeded` (False).
    fallback_on_budget: bool = True
    #: Post-``schedule()`` static verification gate
    #: (:mod:`repro.analysis`): ``"error"`` raises
    #: :class:`~repro.resilience.errors.VerificationError` on an illegal
    #: schedule, ``"warn"`` downgrades the findings to a warning,
    #: ``"off"`` skips the gate.
    verify: str = "error"
    #: Worker threads pricing the candidate windows of one DP frontier
    #: (1 = serial).  Pricing is pure (plans and transitions read shared
    #: state, never write it) and the budget is charged serially before
    #: the batch with results applied in size order afterwards, so the
    #: schedule is float-identical to the serial path — this knob only
    #: trades threads for cold wall-clock.  Excluded from search and
    #: sweep fingerprints for exactly that reason.
    sched_jobs: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical knob values with the field named.

        Raises:
            ConfigError: naming the offending field.
        """
        if not isinstance(self.max_group_size, int) or self.max_group_size < 1:
            raise ConfigError(
                "max_group_size", self.max_group_size,
                "spatial groups need at least one operator",
            )
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ConfigError(
                "keep_fraction", self.keep_fraction,
                "must lie in (0, 1] — a fraction of the SRAM capacity",
            )
        if not 0.0 <= self.constant_residency_fraction <= 1.0:
            raise ConfigError(
                "constant_residency_fraction",
                self.constant_residency_fraction,
                "must lie in [0, 1] — a fraction of the SRAM capacity",
            )
        if (
            not isinstance(self.min_ntt_tile, int)
            or self.min_ntt_tile < 2
            or self.min_ntt_tile & (self.min_ntt_tile - 1)
        ):
            raise ConfigError(
                "min_ntt_tile", self.min_ntt_tile,
                "four-step NTT tiles must be a power of two >= 2",
            )
        if not isinstance(self.constant_share, int) or self.constant_share < 1:
            raise ConfigError(
                "constant_share", self.constant_share,
                "at least one cluster must consume each constant fetch",
            )
        if not isinstance(self.stream_window, int) or self.stream_window < 1:
            raise ConfigError(
                "stream_window", self.stream_window,
                "a deferred tensor must be allowed to wait >= 1 group",
            )
        if self.max_search_seconds is not None and self.max_search_seconds <= 0:
            raise ConfigError(
                "max_search_seconds", self.max_search_seconds,
                "the wall-clock budget must be positive (or None)",
            )
        if self.max_search_nodes is not None and self.max_search_nodes < 1:
            raise ConfigError(
                "max_search_nodes", self.max_search_nodes,
                "the node budget must be >= 1 (or None)",
            )
        if self.verify not in ("error", "warn", "off"):
            raise ConfigError(
                "verify", self.verify,
                'the verification gate is "error", "warn", or "off"',
            )
        if not isinstance(self.sched_jobs, int) or self.sched_jobs < 1:
            raise ConfigError(
                "sched_jobs", self.sched_jobs,
                "frontier pricing needs >= 1 worker (1 = serial)",
            )

    def validate_for_hardware(self, hw: HardwareConfig) -> None:
        """Cross-check knobs against one hardware configuration.

        Only meaningful for searches that decompose NTTs (the scheduler
        applies it when an ``n_split`` is in play); baseline models with
        monolithic NTTs never tile and are exempt.

        Raises:
            ConfigError: when the smallest decomposed-NTT tile cannot
                fill the PE vector lanes (Section V-D's constraint).
        """
        if self.min_ntt_tile * self.min_ntt_tile < hw.lanes_per_pe:
            raise ConfigError(
                "min_ntt_tile", self.min_ntt_tile,
                f"{self.min_ntt_tile}x{self.min_ntt_tile} tiles cannot "
                f"fill the {hw.lanes_per_pe} vector lanes of one "
                f"{hw.name} PE",
            )

    def budget(self) -> SearchBudget:
        """The search budget these knobs describe."""
        return SearchBudget(
            max_seconds=self.max_search_seconds,
            max_nodes=self.max_search_nodes,
        )


@dataclass
class _DpState:
    """Forward DP state: cumulative time plus what lives in SRAM.

    States form a linked chain through ``parent``: instead of copying a
    growing step list on every transition (O(steps) work and garbage per
    priced candidate), each state records only its own ``entry`` — a
    fully priced :class:`ScheduledStep` on the scalar path, or a
    lightweight :class:`_Candidate` on the vectorized path — and
    ``window``, the ``(start, size)`` slice of the topological order it
    covers (all a checkpoint needs).  The winning chain is materialized
    into real steps once, at the end (:meth:`Scheduler._materialize`).

    ``pool`` holds intermediate tensors kept on-chip (uid -> bytes); a
    tensor leaves the pool when its last consumer has executed.  This is
    the top "sequential execution with fully materialized intermediates"
    level of the hierarchy: with enough SRAM, producer/consumer pairs far
    apart in the order still avoid the DRAM round trip.
    """

    seconds: float
    parent: Optional["_DpState"] = None
    #: ScheduledStep (scalar path) or _Candidate (vectorized path).
    entry: Optional[object] = None
    window: Optional[Tuple[int, int]] = None
    pool: Dict[int, int] = field(default_factory=dict)
    resident_constants: Set[int] = field(default_factory=set)
    resident_constant_bytes: int = 0
    #: Boundary outputs whose write decision is deferred: a later step
    #: within the stream window may stream them (temporal pipelining),
    #: pool them, or finally spill them.  uid -> (bytes, age, producer
    #: plan or view).
    pending: Dict[int, Tuple[int, int, Optional[object]]] = field(
        default_factory=dict
    )


class _WindowView:
    """Pricing-time view of one candidate window.

    Carries exactly what the DP transition and the vectorized block
    pricer read: the integer resource demands, the per-position loop
    nests (streamability checks), boundary outputs and per-tensor
    constant/external byte items rebound to this window's uids, and the
    feasibility verdicts.  On a structural-memo hit the view is built
    straight from the stored :class:`PlanSkeleton` — **no live plan is
    instantiated** for windows that only get priced; a plan materializes
    lazily (:meth:`live_plan`) only for the windows on the winning
    cover.  A view can also wrap an existing live plan (memo misses,
    memo-off runs, and subclasses with their own plan construction), so
    both sources price through one code path.
    """

    __slots__ = (
        "ops", "skeleton", "plan", "nests", "feasible", "fits",
        "compute_cycles", "sram_bytes", "noc_bytes", "transpose_bytes",
        "dram_read_bytes", "dram_write_bytes", "buffer_bytes",
        "constant_items", "external_items", "out_items", "consumed",
        "floor",
    )

    ops: Tuple[Operator, ...]
    skeleton: Optional[PlanSkeleton]
    plan: Optional[SpatialGroupPlan]
    nests: Tuple[LoopNest, ...]
    feasible: bool
    fits: bool
    compute_cycles: int
    sram_bytes: int
    noc_bytes: int
    transpose_bytes: int
    dram_read_bytes: int
    dram_write_bytes: int
    buffer_bytes: int
    #: ``(uid, bytes)`` in the metrics dicts' insertion order — the
    #: residency discount loops below are order-sensitive only through
    #: the constant-budget fill, which must match the plan's dict order.
    constant_items: Tuple[Tuple[int, int], ...]
    external_items: Tuple[Tuple[int, int], ...]
    #: ``(uid, bytes)`` of the window's escaping outputs, in
    #: ``plan.boundary()`` order.
    out_items: Tuple[Tuple[int, int], ...]
    consumed: Set[int]
    floor: float

    @classmethod
    def from_skeleton(
        cls,
        skeleton: PlanSkeleton,
        ops: Tuple[Operator, ...],
        hw: HardwareConfig,
        pricing: GroupPricing,
    ) -> "_WindowView":
        view = cls()
        view.ops = ops
        view.skeleton = skeleton
        view.plan = None
        view.nests = skeleton.nests
        view.feasible = bool(skeleton.pe_allocation) or all(
            op.kind is OpKind.TRANSPOSE for op in ops
        )
        view.fits = skeleton.buffer_bytes <= hw.sram_capacity_bytes
        view.compute_cycles = skeleton.compute_cycles
        view.sram_bytes = skeleton.sram_bytes
        view.noc_bytes = skeleton.noc_bytes
        view.transpose_bytes = skeleton.transpose_bytes
        view.dram_read_bytes = skeleton.dram_read_bytes
        view.dram_write_bytes = skeleton.dram_write_bytes
        view.buffer_bytes = skeleton.buffer_bytes
        view.constant_items = tuple(
            (ops[p].inputs[idx].uid, nbytes)
            for p, idx, nbytes in skeleton.constant_bytes
        )
        view.external_items = tuple(
            (ops[p].inputs[idx].uid, nbytes)
            for p, idx, nbytes in skeleton.external_read_bytes
        )
        view.out_items = tuple(
            (ops[p].outputs[idx].uid, ops[p].outputs[idx].bytes)
            for p, idx in skeleton.boundary_outs
        )
        view.consumed = {t.uid for op in ops for t in op.inputs}
        view.floor = pricing.floor_seconds(
            skeleton.compute_cycles, skeleton.sram_bytes,
            skeleton.noc_bytes, skeleton.transpose_bytes,
        )
        return view

    @classmethod
    def from_plan(cls, plan: SpatialGroupPlan) -> "_WindowView":
        view = cls()
        view.ops = plan.ops
        view.skeleton = None
        view.plan = plan
        view.nests = tuple(
            plan.assignment.nest_of(op) for op in plan.ops
        )
        view.feasible = plan.feasible_allocation
        view.fits = plan.fits_buffer
        m = plan.metrics
        view.compute_cycles = m.compute_cycles
        view.sram_bytes = m.sram_bytes
        view.noc_bytes = m.noc_bytes
        view.transpose_bytes = m.transpose_bytes
        view.dram_read_bytes = m.dram_read_bytes
        view.dram_write_bytes = m.dram_write_bytes
        view.buffer_bytes = m.buffer_bytes
        view.constant_items = tuple(m.constant_bytes.items())
        view.external_items = tuple(m.external_read_bytes.items())
        view.out_items = tuple(
            (t.uid, t.bytes) for t in plan.boundary()[1]
        )
        view.consumed = {t.uid for op in plan.ops for t in op.inputs}
        view.floor = plan.seconds_floor()
        return view

    def live_plan(self, scheduler: "Scheduler") -> SpatialGroupPlan:
        """The live plan for this window, instantiated on first use."""
        plan = self.plan
        if plan is None:
            plan = _instantiate(
                self.skeleton, scheduler.graph, self.ops,
                scheduler.hw, scheduler.n_split,
            )
            self.plan = plan
        return plan


class _Candidate:
    """One resolved DP transition awaiting block pricing.

    Produced by :meth:`Scheduler._resolve_candidate` — the residency
    bookkeeping of a transition with the float pricing factored out.
    ``seconds`` is filled by the frontier's single
    :meth:`GroupPricing.price_block` call; the effective DRAM integers
    are resolved here because they depend on the *state* (what is
    resident), unlike the other resource columns which are per-window.
    """

    __slots__ = (
        "view", "pool", "pending", "kept", "spill_bytes",
        "resident_inputs", "resident_constants", "new_consts",
        "new_const_bytes", "eff_dram_read", "eff_dram_write", "seconds",
    )

    view: _WindowView
    pool: Dict[int, int]
    pending: Dict[int, Tuple[int, int, Optional[object]]]
    kept: Set[int]
    spill_bytes: int
    resident_inputs: Set[int]
    resident_constants: Set[int]
    new_consts: Set[int]
    new_const_bytes: int
    eff_dram_read: int
    eff_dram_write: int
    seconds: float


class Scheduler:
    """Searches cross-operator dataflow schedules for one graph.

    Accepts graphs at either lowering level: a *decomposed*-level graph
    is scheduled directly, while a *primitive*-level graph (coarse
    ``KEY_SWITCH``/``ROT_BATCH`` operators, see :mod:`repro.passes`) is
    first lowered through the standard pass pipeline — which needs the
    CKKS ``params`` the graph was built with; passing a coarse graph
    without them is a typed error, since coarse operators answer no
    cost queries.
    """

    @staticmethod
    def _lowered(
        graph: OperatorGraph,
        n_split: Optional[Tuple[int, int]],
        params: Optional["CKKSParams"],
    ) -> OperatorGraph:
        """Lower a primitive-level graph before scheduling it."""
        if not any(op.kind.is_coarse for op in graph.operators):
            return graph
        if params is None:
            raise InvariantViolation(
                "repro.sched.scheduler.Scheduler",
                f"graph {graph.name} contains coarse primitive-level "
                "operators; pass params= so the scheduler can run the "
                "repro.passes lowering pipeline (or lower it yourself)",
            )
        # Imported lazily: repro.passes reaches this module through
        # repro.dse.fingerprint, so a top-level import would cycle.
        from repro.passes.lowering import lower_graph
        from repro.workloads.base import WorkloadOptions

        options = WorkloadOptions(ntt_split=n_split)
        return lower_graph(graph, params, options).result.graph

    def __init__(
        self,
        graph: OperatorGraph,
        hw: HardwareConfig,
        config: Optional[SchedulerConfig] = None,
        n_split: Optional[Tuple[int, int]] = None,
        checkpoint_path: Optional[str] = None,
        params: Optional["CKKSParams"] = None,
    ):
        graph = self._lowered(graph, n_split, params)
        self.graph = graph
        self.hw = hw
        self.config = config or SchedulerConfig()
        if n_split is not None:
            self.config.validate_for_hardware(hw)
        self.n_split = n_split
        self.checkpoint_path = checkpoint_path
        self._plan_cache: Dict[Tuple, SpatialGroupPlan] = {}
        self._view_cache: Dict[Tuple, _WindowView] = {}
        #: Sampled once — the memo gate sits on the hottest path.
        self._memo_enabled = memo_enabled()
        #: Vectorized frontier pricing (REPRO_VECTOR_PRICING, default
        #: on); sampled once like the memo gate.  Float-identical to the
        #: scalar path by construction — see GroupPricing.
        self._vector = vector_pricing_enabled()
        self._pricing = GroupPricing.for_config(hw)
        #: Per-plan consumed-uid sets and per-(producer, consumer,
        #: tensor) streamability verdicts — producer/consumer being a
        #: plan or a window view.  Both are pure functions of objects
        #: this scheduler holds alive, recomputed otherwise on every DP
        #: transition.
        self._consumed_cache: Dict[SpatialGroupPlan, Set[int]] = {}
        self._stream_cache: Dict[Tuple[object, object, int], bool] = {}
        self.stats: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def _plan_for(self, window: Tuple[Operator, ...]) -> SpatialGroupPlan:
        """Plan construction, cached per window identity and structure.

        Two tiers: the per-scheduler identity cache (this exact window,
        by uid — repriced windows reuse the very same plan object), then
        the process-wide *structural* memo
        (:data:`repro.sched.plan_memo.MEMO`), which serves every window
        whose shape it has seen before — the same KeySwitch ladder or
        BSGS diamond recurring within a graph, across NTT-split
        candidates, and across the graphs of a sweep — by rebinding a
        stored plan skeleton instead of re-running nest assignment, PE
        allocation, and the metrics walk.
        """
        key = tuple(op.uid for op in window)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = _PLAN_MEMO.plan_for(
                self.graph, window, self.hw, self.n_split,
                enabled=self._memo_enabled, uids=key,
            )
            self._plan_cache[key] = plan
        return plan

    def _view_for(self, window: Tuple[Operator, ...]) -> _WindowView:
        """Pricing view of a window, cached per window identity.

        With the structural memo on, a memo hit yields a view straight
        from the stored skeleton — no live plan exists until the window
        lands on the winning cover.  Subclasses that override
        ``_plan_for`` (the MAD baseline's depth-1 plans, test doubles)
        are detected and routed through their override, wrapped in a
        view, so the vectorized search never bypasses custom plan
        construction — and MAD skeletons never poison the shared memo.
        """
        key = tuple(op.uid for op in window)
        view = self._view_cache.get(key)
        if view is not None:
            return view
        if (
            self._memo_enabled
            and type(self)._plan_for is Scheduler._plan_for
        ):
            skeleton, plan = _PLAN_MEMO.lookup(
                self.graph, window, self.hw, self.n_split, uids=key,
            )
            if plan is not None:
                # Memo miss: the freshly constructed plan is already
                # live, so keep it (identity cache included) instead of
                # re-instantiating at materialization time.
                self._plan_cache[key] = plan
                view = _WindowView.from_plan(plan)
            else:
                view = _WindowView.from_skeleton(
                    skeleton, window, self.hw, self._pricing
                )
        else:
            view = _WindowView.from_plan(self._plan_for(window))
        self._view_cache[key] = view
        return view

    # ------------------------------------------------------------------

    def _search_fingerprint(self, order: Sequence[Operator]) -> str:
        """Structural identity of this search (checkpoint validity)."""
        cfg = self.config
        return search_fingerprint(
            self.graph.subgraph_signature(tuple(order)),
            (self.hw.name, self.hw.num_pes, self.hw.lanes_per_pe,
             self.hw.sram_capacity_mb, self.hw.word_bits),
            (cfg.max_group_size, cfg.keep_fraction,
             cfg.constant_residency_fraction, cfg.min_ntt_tile,
             cfg.constant_share, cfg.chained_io, cfg.temporal_streaming,
             cfg.stream_window),
            self.n_split,
        )

    def _initial_state(self, keep_budget: int) -> _DpState:
        """The DP origin: segment inputs arrive on-chip if chained."""
        initial_pool: Dict[int, int] = {}
        if self.config.chained_io:
            from repro.ir.tensors import TensorKind

            used = 0
            for t in self.graph.graph_inputs():
                if t.kind is TensorKind.EXTERNAL and used + t.bytes <= keep_budget:
                    initial_pool[t.uid] = t.bytes
                    used += t.bytes
        return _DpState(seconds=0.0, pool=initial_pool)

    def _settle(self, final: _DpState, steps: List[ScheduledStep]) -> None:
        """Settle still-deferred outputs (graph results must land in
        memory): charge their writes to the last step.  With chained
        segment I/O the outputs stay on-chip for the next segment."""
        if final.pending and steps and not self.config.chained_io:
            spill = sum(nbytes for nbytes, _, _ in final.pending.values())
            last = steps[-1]
            last.metrics.dram_write_bytes += spill
            last.seconds = max(
                last.seconds,
                last.metrics.dram_bytes
                / (self.hw.dram_bytes_per_second * 0.85),
            )

    def _cover_of(self, state: _DpState) -> List[Tuple[int, int]]:
        """The (start, size) window sequence that produced a DP state."""
        cover: List[Tuple[int, int]] = []
        node: Optional[_DpState] = state
        while node is not None and node.window is not None:
            cover.append(node.window)
            node = node.parent
        cover.reverse()
        return cover

    def _materialize(self, state: _DpState) -> List[ScheduledStep]:
        """Realize a winning DP chain as fully priced scheduled steps.

        Scalar-path entries already are steps.  Vectorized candidates
        instantiate their plan now (for most windows this is the only
        instantiation that ever happens) and price the final step
        through the **legacy scalar**
        :meth:`SpatialGroupPlan.execution_seconds` with the residency
        sets the transition recorded — so the artifact floats come from
        the exact same code path whichever pricing mode ran the search.
        """
        chain: List[_DpState] = []
        node: Optional[_DpState] = state
        while node is not None and node.entry is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        steps: List[ScheduledStep] = []
        for link in chain:
            entry = link.entry
            if isinstance(entry, ScheduledStep):
                steps.append(entry)
                continue
            plan = entry.view.live_plan(self)
            seconds, metrics = plan.execution_seconds(
                resident_inputs=entry.resident_inputs,
                resident_constants=entry.resident_constants,
                kept_outputs=entry.kept,
                constant_share=self.config.constant_share,
                extra_write_bytes=entry.spill_bytes,
            )
            steps.append(ScheduledStep(
                plan=plan,
                seconds=seconds,
                metrics=metrics,
                resident_inputs=entry.resident_inputs,
                resident_constants=entry.resident_constants,
                kept_outputs=entry.kept,
            ))
        return steps

    def _replay_cover(
        self,
        windows: Sequence[Tuple[int, int]],
        order: Sequence[Operator],
        keep_budget: int,
        const_budget: int,
        last_use: Dict[int, int],
        origin: _DpState,
    ) -> _DpState:
        """Rebuild a DP state by replaying its checkpointed cover."""
        state = origin
        expected = 0
        for start, size in windows:
            if start != expected or size < 1 or start + size > len(order):
                raise ValueError("malformed checkpoint cover")
            window = tuple(order[start: start + size])
            plan = self._plan_for(window)
            if not plan.feasible_allocation or not plan.fits_buffer:
                raise ValueError("checkpoint cover replays infeasible window")
            _, state = self._transition(
                state, plan, keep_budget, const_budget,
                end_pos=start + size, last_use=last_use,
            )
            expected = start + size
        return state

    def _restore_checkpoint(
        self,
        fingerprint: str,
        order: Sequence[Operator],
        keep_budget: int,
        const_budget: int,
        last_use: Dict[int, int],
        dp: List[Optional[_DpState]],
    ) -> Tuple[int, int]:
        """Load a matching checkpoint into ``dp``; return the resume
        point ``(next_i, next_size)`` — ``(0, 1)`` when no usable
        checkpoint exists.  ``next_size`` matters when the budget
        tripped *inside* the window-size loop: sizes below it at
        ``next_i`` are already folded into the restored covers, and
        re-exploring them would double-charge the budget."""
        if self.checkpoint_path is None:
            return 0, 1
        ckpt = SearchCheckpoint.load(self.checkpoint_path, fingerprint)
        if ckpt is None:
            return 0, 1
        try:
            for j, windows in sorted(ckpt.covers.items()):
                if not 1 <= j <= len(order):
                    raise ValueError("checkpoint index out of range")
                dp[j] = self._replay_cover(
                    windows, order, keep_budget, const_budget, last_use,
                    dp[0],
                )
        except Exception:
            # A stale or corrupt checkpoint must never poison a fresh
            # search: drop everything replayed and start over.
            for j in range(1, len(dp)):
                dp[j] = None
            return 0, 1
        self.stats["resumed_from"] = float(ckpt.next_i)
        if _METRICS.enabled:
            _METRICS.counter("sched.checkpoint_restores").inc()
        return min(max(ckpt.next_i, 0), len(order)), max(ckpt.next_size, 1)

    def _save_checkpoint(
        self,
        fingerprint: str,
        next_i: int,
        dp: Sequence[Optional[_DpState]],
        next_size: int = 1,
    ) -> None:
        """Persist the per-window best covers reached so far."""
        if self.checkpoint_path is None:
            return
        covers = {
            j: self._cover_of(state)
            for j, state in enumerate(dp)
            if j > 0 and state is not None
        }
        SearchCheckpoint(
            fingerprint=fingerprint, next_i=next_i, next_size=next_size,
            covers=covers,
        ).save(self.checkpoint_path)
        if _METRICS.enabled:
            _METRICS.counter("sched.checkpoint_saves").inc()

    # ------------------------------------------------------------------

    def schedule(self) -> Schedule:
        """Run the DP and return the best schedule found.

        Under an exhausted search budget (wall-clock or node count) the
        DP is abandoned — checkpointing its frontier when a checkpoint
        path is set — and the deterministic greedy fallback produces a
        valid schedule tagged ``degraded=True`` (unless
        ``fallback_on_budget=False``, which raises
        :class:`SearchBudgetExceeded` instead). An infeasible DP cover
        likewise falls back to greedy before giving up with a typed
        :class:`InfeasibleScheduleError`.

        When telemetry is on (:mod:`repro.obs`) the search runs inside a
        ``sched.schedule`` span and stamps the search counters of the
        metric catalog (windows explored, checkpoint activity, budget
        spend, degraded fallbacks); when it is off the only overhead is
        one flag check.
        """
        with _span(
            "sched.schedule", graph=self.graph.name,
            ops=self.graph.num_operators,
        ) as sp:
            schedule = self._schedule_impl()
            sp.set("windows_explored", self.stats.get("windows_explored", 0))
            sp.set("degraded", schedule.degraded)
            return schedule

    def _schedule_impl(self) -> Schedule:
        t0 = _time.time()
        order = self.graph.operators_topological()
        n = len(order)
        sram = self.hw.sram_capacity_bytes
        keep_budget = int(sram * self.config.keep_fraction)
        const_budget = int(sram * self.config.constant_residency_fraction)

        # Liveness: the last topological position consuming each tensor,
        # used to evict dead intermediates from the resident pool.
        pos = {op.uid: idx for idx, op in enumerate(order)}
        last_use: Dict[int, int] = {}
        for op in order:
            for t in op.inputs:
                last_use[t.uid] = max(last_use.get(t.uid, -1), pos[op.uid])

        meter = BudgetMeter(self.config.budget())
        self._meter = meter
        self._memo_base = _PLAN_MEMO.snapshot()
        dp: List[Optional[_DpState]] = [None] * (n + 1)
        dp[0] = self._initial_state(keep_budget)
        fingerprint = self._search_fingerprint(order)
        start_i, start_size = self._restore_checkpoint(
            fingerprint, order, keep_budget, const_budget, last_use, dp
        )
        jobs = self.config.sched_jobs
        executor = (
            ThreadPoolExecutor(max_workers=jobs) if jobs > 1 else None
        )
        #: The exact (position, window size) the budget tripped at — the
        #: resume point a checkpoint must record so no candidate is
        #: explored (or budget-charged) twice across interruptions.
        interrupted_at: Optional[Tuple[int, int]] = None
        try:
            for i in range(start_i, n):
                if meter.exceeded:
                    interrupted_at = (i, 1)
                    break
                state = dp[i]
                if state is None:
                    continue

                # Charge the budget serially, in size order, *before*
                # pricing: the interruption point is then identical
                # whether the batch below prices serially or in
                # parallel.
                size_lo = start_size if i == start_i else 1
                sizes: List[int] = []
                budget_trip: Optional[int] = None
                for size in range(size_lo, self.config.max_group_size + 1):
                    if i + size > n:
                        break
                    meter.charge()
                    if meter.exceeded:
                        budget_trip = size
                        break
                    sizes.append(size)

                if self._vector:
                    self._vector_frontier(
                        dp, order, state, i, sizes, executor,
                        keep_budget, const_budget, last_use,
                    )
                    if budget_trip is not None:
                        interrupted_at = (i, budget_trip)
                        break
                    continue

                def _price(
                    size: int, state: _DpState = state, i: int = i
                ) -> Optional[Tuple[ScheduledStep, _DpState]]:
                    window = tuple(order[i: i + size])
                    plan = self._plan_for(window)
                    if not plan.feasible_allocation:
                        # Infeasible at this size does not rule out
                        # larger windows — feasibility is a property of
                        # the whole window, not a prefix of it — so
                        # *skip* this size rather than abandoning the
                        # frontier (a `break` here silently pruned every
                        # larger candidate).
                        return None
                    if not plan.fits_buffer:
                        return None
                    # Dominance prune: residency discounts only lower
                    # the DRAM term, so ``seconds_floor`` bounds the
                    # step time from below.  A candidate that cannot
                    # beat the state already at dp[i+size] would be
                    # discarded by the strict `<` in the apply loop —
                    # skipping it leaves dp evolution byte-identical.
                    # (dp[i+size] is only written after this whole
                    # batch prices, so the read is race-free under
                    # parallel pricing too.)
                    existing = dp[i + size]
                    if (
                        existing is not None
                        and state.seconds + plan.seconds_floor()
                        >= existing.seconds
                    ):
                        return None
                    return self._transition(
                        state, plan, keep_budget, const_budget,
                        end_pos=i + size, last_use=last_use,
                    )

                # Pricing is pure (reads dp[i] and the plan, writes
                # nothing shared), so the batch can fan out to threads;
                # results are applied in size order below either way,
                # which keeps dp evolution — and thus the schedule —
                # float-identical to the serial path.
                if executor is not None and len(sizes) > 1:
                    self.stats["parallel_priced"] = (
                        self.stats.get("parallel_priced", 0.0) + len(sizes)
                    )
                    priced = list(executor.map(_price, sizes))
                else:
                    priced = [_price(size) for size in sizes]
                for size, result in zip(sizes, priced):
                    if result is None:
                        continue
                    _, new_state = result
                    j = i + size
                    if dp[j] is None or new_state.seconds < dp[j].seconds:
                        dp[j] = new_state
                if budget_trip is not None:
                    interrupted_at = (i, budget_trip)
                    break
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        if interrupted_at is not None:
            self._save_checkpoint(
                fingerprint, interrupted_at[0], dp,
                next_size=interrupted_at[1],
            )
            frontier = max(
                (j for j, s in enumerate(dp) if s is not None), default=0
            )
            if not self.config.fallback_on_budget:
                raise SearchBudgetExceeded(
                    elapsed_seconds=meter.elapsed,
                    nodes_explored=meter.nodes,
                    budget_seconds=self.config.max_search_seconds,
                    budget_nodes=self.config.max_search_nodes,
                    frontier=frontier,
                )
            return self._finish(
                self._greedy_schedule(
                    order, keep_budget, const_budget, last_use,
                    reason=f"search budget exceeded ({meter.describe()})",
                ),
                t0,
            )
        final = dp[n]
        if final is None:
            # No feasible DP cover (e.g. a single window exceeding the
            # stream budget interacting badly with the keep pool): the
            # greedy fallback tries smaller windows before giving up.
            return self._finish(
                self._greedy_schedule(
                    order, keep_budget, const_budget, last_use,
                    reason="no feasible DP cover",
                ),
                t0,
            )
        if self.checkpoint_path is not None:
            self._save_checkpoint(fingerprint, n, dp)
        steps = self._materialize(final)
        self._settle(final, steps)
        return self._finish(Schedule(steps=steps), t0)

    def replay(self, window_sizes: Sequence[int]) -> Schedule:
        """Rebuild a schedule from its window cover, without searching.

        A schedule this class produces is fully determined by the sizes
        of its consecutive windows over the deterministic topological
        order: replaying the cover through the same ``_transition``
        pricing reproduces every step (seconds, metrics, residency sets)
        exactly.  This is how the DSE cache rehydrates schedules across
        processes — the cover is tiny and portable where live
        :class:`~repro.sched.dataflow.SpatialGroupPlan` objects are not.

        The DP search counters (``sched.searches`` etc.) are *not*
        touched — a replay is a cache hit, not a search — and the static
        verification gate is skipped (the simulator re-verifies steps
        before running them).

        Raises:
            InvariantViolation: when the cover does not tile the
                topological order or replays an infeasible window (a
                stale or foreign cover — callers treat this as a cache
                miss and fall back to a fresh search).
        """
        order = self.graph.operators_topological()
        n = len(order)
        sizes = [int(s) for s in window_sizes]
        if any(s < 1 for s in sizes) or sum(sizes) != n:
            raise InvariantViolation(
                "repro.sched.scheduler.Scheduler.replay",
                f"cover {sizes!r} does not tile the {n}-operator order",
            )
        sram = self.hw.sram_capacity_bytes
        keep_budget = int(sram * self.config.keep_fraction)
        const_budget = int(sram * self.config.constant_residency_fraction)
        pos = {op.uid: idx for idx, op in enumerate(order)}
        last_use: Dict[int, int] = {}
        for op in order:
            for t in op.inputs:
                last_use[t.uid] = max(last_use.get(t.uid, -1), pos[op.uid])
        windows: List[Tuple[int, int]] = []
        start = 0
        for size in sizes:
            windows.append((start, size))
            start += size
        try:
            final = self._replay_cover(
                windows, order, keep_budget, const_budget, last_use,
                self._initial_state(keep_budget),
            )
        except ValueError as exc:
            raise InvariantViolation(
                "repro.sched.scheduler.Scheduler.replay", str(exc)
            ) from None
        steps = self._materialize(final)
        self._settle(final, steps)
        self.stats["replayed"] = 1.0
        if _METRICS.enabled:
            _METRICS.counter("sched.replays").inc()
        return Schedule(steps=steps)

    def _finish(self, schedule: Schedule, t0: float) -> Schedule:
        """Stamp search stats, run the verification gate, and return."""
        self.stats["search_seconds"] = _time.time() - t0
        # On the vectorized path most windows never instantiate a live
        # plan; the view cache is the per-window working set then.
        self.stats["plans_cached"] = float(
            max(len(self._plan_cache), len(self._view_cache))
        )
        self.stats["degraded"] = 1.0 if schedule.degraded else 0.0
        meter: Optional[BudgetMeter] = getattr(self, "_meter", None)
        if meter is not None:
            self.stats["windows_explored"] = float(meter.nodes)
        # Structural plan-memo activity during this search (the memo is
        # process-wide; counters are stamped here, single-threaded, so
        # pricing workers never race on the registry).
        memo_hits = memo_misses = 0
        base = getattr(self, "_memo_base", None)
        if base is not None:
            snap = _PLAN_MEMO.snapshot()
            memo_hits = (
                snap["memo_hit"] - base["memo_hit"]
                + snap["disk_hit"] - base["disk_hit"]
            )
            memo_misses = snap["memo_miss"] - base["memo_miss"]
            self.stats["plan_memo_hits"] = float(memo_hits)
            self.stats["plan_memo_misses"] = float(memo_misses)
        if _METRICS.enabled:
            _METRICS.counter("sched.searches").inc()
            _METRICS.counter("sched.plans_cached").inc(
                int(self.stats["plans_cached"])
            )
            _METRICS.histogram("sched.search_seconds").observe(
                self.stats["search_seconds"]
            )
            if meter is not None:
                _METRICS.counter("sched.windows_explored").inc(meter.nodes)
            if memo_hits:
                _METRICS.counter("sched.plan.memo_hit").inc(memo_hits)
            if memo_misses:
                _METRICS.counter("sched.plan.memo_miss").inc(memo_misses)
            parallel = int(self.stats.get("parallel_priced", 0))
            if parallel:
                _METRICS.counter("sched.price.parallel").inc(parallel)
            vectored = int(self.stats.get("vector_priced", 0))
            if vectored:
                _METRICS.counter("sched.price.vector").inc(vectored)
            if schedule.degraded:
                _METRICS.counter("sched.degraded_fallbacks").inc()
        self._verify_gate(schedule)
        return schedule

    def _verify_gate(self, schedule: Schedule) -> None:
        """Statically verify the produced schedule (``config.verify``).

        Every operator of ``self.graph`` appears in exactly one step of a
        schedule this class produces, so the full rule set — order,
        coverage, residency provenance, plus the cross-window dataflow
        rules (F002 peak residency, F003 key-switch reachability, F004
        sharing) — applies.  ``verify="warn"`` reports without failing;
        ``verify="off"`` skips the gate (the evaluation pipeline
        re-verifies via the simulator's pre-run check anyway).
        """
        if self.config.verify == "off":
            return
        # Imported lazily: repro.analysis depends on this module.
        from repro.analysis.flow import (
            verify_key_reach,
            verify_residency,
            verify_sharing,
        )
        from repro.analysis.schedule_verify import verify_schedule
        from repro.resilience.errors import VerificationError

        with _span("sched.verify", graph=self.graph.name):
            report = verify_schedule(
                schedule, self.hw, graph=self.graph, config=self.config
            )
            steps = list(schedule.steps)
            if steps:
                # The gate may be handed a partition segment rather than
                # a complete program graph (schedule_partitioned runs one
                # Scheduler per segment), so the graph-level F003/F004
                # halves run in their boundary-tolerant modes: ModUp may
                # live in an upstream segment and siblings may be
                # consumed by a downstream one.  The full-strength graph
                # checks run on complete graphs via verify_flow_graph
                # (engine pre-run, runner --verify, analysis CLI).
                verify_residency(steps, self.hw, report,
                                 config=self.config)
                verify_key_reach(self.graph, steps, report,
                                 assume_boundary_materialized=True)
                verify_sharing(self.graph, steps, report,
                               graph_level=False)
        self.stats["verify_errors"] = float(len(report.errors))
        if report.ok:
            return
        if self.config.verify == "error":
            raise VerificationError(
                f"schedule for graph {self.graph.name!r} failed static "
                "verification",
                report=report,
            )
        import warnings

        warnings.warn(
            f"schedule for graph {self.graph.name!r} failed static "
            f"verification:\n{report.render_text()}",
            stacklevel=3,
        )

    # ------------------------------------------------------------------

    def _greedy_schedule(
        self,
        order: Sequence[Operator],
        keep_budget: int,
        const_budget: int,
        last_use: Dict[int, int],
        reason: str,
    ) -> Schedule:
        """Deterministic fallback: fixed MAD-style fusion windows.

        Walks the topological order taking the largest feasible window
        up to :data:`GREEDY_FALLBACK_WINDOW` operators — linear in the
        graph, no search — and prices each step with the same transition
        function as the DP, so the result is a *valid* (if suboptimal)
        schedule.  Raises :class:`InfeasibleScheduleError` only when a
        single operator cannot be placed at all.
        """
        n = len(order)
        state = self._initial_state(keep_budget)
        cap = min(self.config.max_group_size, GREEDY_FALLBACK_WINDOW)
        i = 0
        while i < n:
            placed = False
            for size in range(min(cap, n - i), 0, -1):
                window = tuple(order[i: i + size])
                plan = self._plan_for(window)
                if not plan.feasible_allocation or not plan.fits_buffer:
                    continue
                _, state = self._transition(
                    state, plan, keep_budget, const_budget,
                    end_pos=i + size, last_use=last_use,
                )
                i += size
                placed = True
                break
            if not placed:
                single = self._plan_for((order[i],))
                raise InfeasibleScheduleError(
                    "no feasible cover: operator cannot be placed even "
                    "as a singleton group",
                    operator=order[i].name,
                    position=i,
                    partial_steps=len(self._cover_of(state)),
                    detail=(
                        f"group buffer needs "
                        f"{single.metrics.buffer_bytes} B but SRAM holds "
                        f"{self.hw.sram_capacity_bytes} B"
                    ),
                )
        steps = self._materialize(state)
        self._settle(state, steps)
        return Schedule(
            steps=steps, degraded=True, degraded_reason=reason
        )

    # ------------------------------------------------------------------

    def _vector_frontier(
        self,
        dp: List[Optional[_DpState]],
        order: Sequence[Operator],
        state: _DpState,
        i: int,
        sizes: Sequence[int],
        executor: Optional[ThreadPoolExecutor],
        keep_budget: int,
        const_budget: int,
        last_use: Dict[int, int],
    ) -> None:
        """Price one DP frontier through the numpy block kernel.

        The per-candidate *residency resolution* (pool/pending/constant
        bookkeeping, pure integer work) runs first — serially or fanned
        out to the pricing threads exactly like the scalar path — then
        the surviving candidates' packed integer columns price in a
        single :meth:`GroupPricing.price_block` call, and results apply
        in size order with the same strict ``<`` as the scalar path.
        Feasibility, fit, and dominance prunes reproduce the scalar
        path's decisions (``view.floor`` is ``seconds_floor`` computed
        from the same integers), so dp evolution is float-identical.
        """

        def _resolve(
            size: int, state: _DpState = state, i: int = i
        ) -> Optional[_Candidate]:
            view = self._view_for(tuple(order[i: i + size]))
            if not view.feasible or not view.fits:
                # Same skip-not-break semantics as the scalar path:
                # infeasibility at one size says nothing about larger
                # windows.
                return None
            existing = dp[i + size]
            if (
                existing is not None
                and state.seconds + view.floor >= existing.seconds
            ):
                return None
            return self._resolve_candidate(
                state, view, keep_budget, const_budget,
                end_pos=i + size, last_use=last_use,
            )

        if executor is not None and len(sizes) > 1:
            self.stats["parallel_priced"] = (
                self.stats.get("parallel_priced", 0.0) + len(sizes)
            )
            cands = list(executor.map(_resolve, sizes))
        else:
            cands = [_resolve(size) for size in sizes]
        live = [c for c in cands if c is not None]
        if live:
            block = self._pricing.price_block(
                [c.view.compute_cycles for c in live],
                [c.eff_dram_read + c.eff_dram_write for c in live],
                [c.view.sram_bytes for c in live],
                [c.view.noc_bytes for c in live],
                [c.view.transpose_bytes for c in live],
            )
            for cand, sec in zip(live, block):
                cand.seconds = float(sec)
            self.stats["vector_priced"] = (
                self.stats.get("vector_priced", 0.0) + len(live)
            )
        for size, cand in zip(sizes, cands):
            if cand is None:
                continue
            j = i + size
            total = state.seconds + cand.seconds
            existing = dp[j]
            if existing is None or total < existing.seconds:
                dp[j] = _DpState(
                    seconds=total,
                    parent=state,
                    entry=cand,
                    window=(i, size),
                    pool=cand.pool,
                    resident_constants=cand.new_consts,
                    resident_constant_bytes=cand.new_const_bytes,
                    pending=cand.pending,
                )

    def _resolve_candidate(
        self,
        state: _DpState,
        view: _WindowView,
        keep_budget: int,
        const_budget: int,
        end_pos: int,
        last_use: Dict[int, int],
    ) -> _Candidate:
        """The residency half of a DP transition, sans pricing.

        Mirrors :meth:`_transition` statement for statement — pool
        eviction, pending settlement, residency capture, effective-DRAM
        resolution, constant-pool fill — against a :class:`_WindowView`
        instead of a live plan.  All integer/set arithmetic; the float
        pricing happens once per frontier in
        :meth:`GroupPricing.price_block`.
        """
        resident_constants = state.resident_constants
        consumed = view.consumed
        window = max(self.config.stream_window, 1)
        new_pool = {
            uid: nbytes
            for uid, nbytes in state.pool.items()
            if last_use.get(uid, -1) >= end_pos
        }
        pool_bytes = sum(new_pool.values())

        streamed: Set[int] = set()
        spill_bytes = 0
        new_pending: Dict[int, Tuple[int, int, Optional[object]]] = {}
        for uid, (nbytes, age, producer) in state.pending.items():
            live_later = last_use.get(uid, -1) >= end_pos
            consumed_now = uid in consumed
            if consumed_now and self._streamable(uid, producer, view):
                streamed.add(uid)
                if live_later:
                    if pool_bytes + nbytes <= keep_budget:
                        new_pool[uid] = nbytes
                        pool_bytes += nbytes
                    elif age + 1 < window:
                        new_pending[uid] = (nbytes, age + 1, producer)
                    else:
                        spill_bytes += nbytes
                continue
            if consumed_now:
                if pool_bytes + nbytes <= keep_budget:
                    new_pool[uid] = nbytes
                    pool_bytes += nbytes
                else:
                    spill_bytes += nbytes
                continue
            if pool_bytes + nbytes <= keep_budget and live_later:
                new_pool[uid] = nbytes
                pool_bytes += nbytes
            elif age + 1 < window and live_later:
                new_pending[uid] = (nbytes, age + 1, producer)
            else:
                spill_bytes += nbytes

        # Captured *before* this window's outputs enter the pool —
        # exactly where _transition computes it.
        resident_inputs = new_pool.keys() | streamed | state.pool.keys()
        kept: Set[int] = set()
        for uid, nbytes in view.out_items:
            if last_use.get(uid, -1) < end_pos:
                new_pending[uid] = (nbytes, 0, view)  # graph output
                kept.add(uid)
                continue
            if pool_bytes + nbytes <= keep_budget:
                new_pool[uid] = nbytes
                pool_bytes += nbytes
                kept.add(uid)
            else:
                new_pending[uid] = (nbytes, 0, view)
                kept.add(uid)

        # Effective DRAM integers: the same discounts, in the same
        # order, with the same clamps as execution_seconds.
        share = self.config.constant_share
        dram_read = view.dram_read_bytes
        for uid, nbytes in view.external_items:
            if uid in resident_inputs:
                dram_read -= nbytes
        for uid, nbytes in view.constant_items:
            if uid in resident_constants:
                dram_read -= nbytes
            elif share > 1:
                dram_read -= nbytes * (share - 1) // share
        dram_read = max(dram_read, 0)
        dram_write = view.dram_write_bytes
        if kept:
            for uid, nbytes in view.out_items:
                if uid in kept:
                    dram_write -= nbytes
            dram_write = max(dram_write, 0)
        dram_write += max(spill_bytes, 0)

        new_consts = state.resident_constants
        new_const_bytes = state.resident_constant_bytes
        added: Optional[Set[int]] = None
        for uid, nbytes in view.constant_items:
            if uid not in new_consts and new_const_bytes + nbytes <= const_budget:
                if added is None:
                    added = set()
                added.add(uid)
                new_const_bytes += nbytes
        if added:
            new_consts = state.resident_constants | added

        cand = _Candidate()
        cand.view = view
        cand.pool = new_pool
        cand.pending = new_pending
        cand.kept = kept
        cand.spill_bytes = spill_bytes
        cand.resident_inputs = resident_inputs
        cand.resident_constants = resident_constants
        cand.new_consts = new_consts
        cand.new_const_bytes = new_const_bytes
        cand.eff_dram_read = dram_read
        cand.eff_dram_write = dram_write
        cand.seconds = 0.0
        return cand

    def _consumed_uids(self, plan: SpatialGroupPlan) -> Set[int]:
        uids = self._consumed_cache.get(plan)
        if uids is None:
            uids = set()
            for op in plan.ops:
                for t in op.inputs:
                    uids.add(t.uid)
            self._consumed_cache[plan] = uids
        return uids

    @staticmethod
    def _nest_at(group: object, pos: int) -> LoopNest:
        """Loop nest of operator ``pos`` in a plan or a window view.

        Views carry nests by window position; plans key them by uid.
        Skeleton-derived nests are the very objects a live plan would
        hold (instantiation re-keys, never rebuilds), so
        ``matched_prefix`` verdicts are identical across the two forms.
        """
        if isinstance(group, _WindowView):
            return group.nests[pos]
        return group.assignment.nest_of(group.ops[pos])

    def _streamable(
        self,
        uid: int,
        producer: Optional[object],
        consumer: object,
    ) -> bool:
        """Can a deferred tensor stream from the previous group into this
        one (matched top loops across the boundary, Section V-A)?

        ``producer``/``consumer`` are plans or window views — DP chains
        can mix them (a checkpoint replays through live plans, the
        vectorized search extends through views).  Pure in its
        arguments, so verdicts are cached per (producer, consumer,
        tensor) — the same pair is re-queried from many DP states.
        """
        if producer is None or not self.config.temporal_streaming:
            return False
        key = (producer, consumer, uid)
        hit = self._stream_cache.get(key)
        if hit is not None:
            return hit
        verdict = self._streamable_uncached(uid, producer, consumer)
        self._stream_cache[key] = verdict
        return verdict

    def _streamable_uncached(
        self,
        uid: int,
        producer: object,
        consumer: object,
    ) -> bool:
        prod_ops = producer.ops  # type: ignore[attr-defined]
        prod_pos = None
        for pos, op in enumerate(prod_ops):
            if any(t.uid == uid for t in op.outputs):
                prod_pos = pos
                break
        if prod_pos is None:
            return False
        prod_nest = self._nest_at(producer, prod_pos)
        cons_ops = consumer.ops  # type: ignore[attr-defined]
        for pos, op in enumerate(cons_ops):
            if any(t.uid == uid for t in op.inputs):
                cons_nest = self._nest_at(consumer, pos)
                if matched_prefix(prod_nest, cons_nest) > 0:
                    return True
        return False

    def _transition(
        self,
        state: _DpState,
        plan: SpatialGroupPlan,
        keep_budget: int,
        const_budget: int,
        end_pos: int,
        last_use: Dict[int, int],
    ) -> Tuple[ScheduledStep, _DpState]:
        resident_constants = state.resident_constants
        consumed = self._consumed_uids(plan)
        window = max(self.config.stream_window, 1)
        # Evolve the resident pool: evict tensors dead after this window.
        # NOTE: _resolve_candidate mirrors this method statement for
        # statement (minus the float pricing) — keep them in lockstep.
        new_pool = {
            uid: nbytes
            for uid, nbytes in state.pool.items()
            if last_use.get(uid, -1) >= end_pos
        }
        pool_bytes = sum(new_pool.values())

        # Settle deferred outputs: a tensor may wait up to the stream
        # window (holding only its granule) for a consumer whose loops
        # match, streaming through SRAM with no DRAM round trip — the
        # depth of a temporal pipelining group.  Consumers that arrive
        # with mismatched loops force the spill (their read was charged),
        # and tensors that outlive the window are spilled too.
        streamed: Set[int] = set()
        spill_bytes = 0
        new_pending: Dict[int, Tuple[int, int, Optional[object]]] = {}
        for uid, (nbytes, age, producer_plan) in state.pending.items():
            live_later = last_use.get(uid, -1) >= end_pos
            consumed_now = uid in consumed
            if consumed_now and self._streamable(uid, producer_plan, plan):
                streamed.add(uid)
                if live_later:
                    if pool_bytes + nbytes <= keep_budget:
                        new_pool[uid] = nbytes
                        pool_bytes += nbytes
                    elif age + 1 < window:
                        new_pending[uid] = (nbytes, age + 1, producer_plan)
                    else:
                        spill_bytes += nbytes
                continue
            if consumed_now:
                # Unmatched consumer already charged its read: settle with
                # the spill write unless the pool can absorb the tensor.
                if pool_bytes + nbytes <= keep_budget:
                    new_pool[uid] = nbytes
                    pool_bytes += nbytes
                else:
                    spill_bytes += nbytes
                continue
            if pool_bytes + nbytes <= keep_budget and live_later:
                new_pool[uid] = nbytes
                pool_bytes += nbytes
            elif age + 1 < window and live_later:
                new_pending[uid] = (nbytes, age + 1, producer_plan)
            else:
                spill_bytes += nbytes

        resident_inputs = new_pool.keys() | streamed | state.pool.keys()
        # Outputs of this window: pool what fits, defer the rest.
        _, outs = plan.boundary()
        kept: Set[int] = set()
        for t in outs:
            if last_use.get(t.uid, -1) < end_pos:
                new_pending[t.uid] = (t.bytes, 0, plan)  # graph output
                kept.add(t.uid)  # defer the write
                continue
            if pool_bytes + t.bytes <= keep_budget:
                new_pool[t.uid] = t.bytes
                pool_bytes += t.bytes
                kept.add(t.uid)
            else:
                new_pending[t.uid] = (t.bytes, 0, plan)
                kept.add(t.uid)  # defer; a later transition settles it
        pending = new_pending
        seconds, metrics = plan.execution_seconds(
            resident_inputs=resident_inputs,
            resident_constants=resident_constants,
            kept_outputs=kept,
            constant_share=self.config.constant_share,
            extra_write_bytes=spill_bytes,
        )
        step = ScheduledStep(
            plan=plan,
            seconds=seconds,
            metrics=metrics,
            resident_inputs=resident_inputs,
            # Resident-constant sets are never mutated in place after a
            # transition, so steps and states can share them.
            resident_constants=resident_constants,
            kept_outputs=kept,
        )
        # Update the resident-constant pool (kept while the budget holds).
        new_consts = state.resident_constants
        new_const_bytes = state.resident_constant_bytes
        added: Optional[Set[int]] = None
        for uid, nbytes in plan.metrics.constant_bytes.items():
            if uid not in new_consts and new_const_bytes + nbytes <= const_budget:
                if added is None:
                    added = set()
                added.add(uid)
                new_const_bytes += nbytes
        if added:
            new_consts = state.resident_constants | added
        new_state = _DpState(
            seconds=state.seconds + seconds,
            parent=state,
            entry=step,
            window=(end_pos - len(plan.ops), len(plan.ops)),
            pool=new_pool,
            resident_constants=new_consts,
            resident_constant_bytes=new_const_bytes,
            pending=pending,
        )
        return step, new_state


def schedule_graph(
    graph: OperatorGraph,
    hw: HardwareConfig,
    config: Optional[SchedulerConfig] = None,
    candidate_splits: Optional[Sequence[Optional[Tuple[int, int]]]] = None,
) -> Schedule:
    """Schedule a graph, trying each candidate NTT split and keeping the
    fastest result (the scheduler-level half of Section V-B).

    A split whose search proves infeasible is skipped as long as some
    other candidate succeeds; only when every candidate fails does the
    last :class:`InfeasibleScheduleError` propagate.
    """
    if candidate_splits is None:
        candidate_splits = [None]
    best: Optional[Schedule] = None
    last_error: Optional[InfeasibleScheduleError] = None
    for split in candidate_splits:
        try:
            sched = Scheduler(graph, hw, config, n_split=split).schedule()
        except InfeasibleScheduleError as exc:
            last_error = exc
            continue
        if best is None or sched.total_seconds < best.total_seconds:
            best = sched
    if best is None:
        if last_error is not None:
            raise last_error
        raise InfeasibleScheduleError(
            "no candidate NTT split produced a schedule",
            detail=f"candidates tried: {list(candidate_splits)!r}",
        )
    return best


def schedule_partitioned(
    graph: OperatorGraph,
    hw: HardwareConfig,
    config: Optional[SchedulerConfig] = None,
    n_split: Optional[Tuple[int, int]] = None,
    segment_limit: int = 25,
) -> Schedule:
    """Schedule a large graph via pre-partitioning with merging.

    The paper's path for ResNet-scale graphs (Section V-D): partition
    into acyclic segments of at most ``segment_limit`` operators, search
    each *distinct* segment structure once, and reuse the result for its
    structural twins — the twins share the representative's scheduled
    steps, whose costs are identical by construction of the signature.
    A degraded segment schedule (budget fallback) marks the combined
    schedule degraded.
    """
    from repro.sched.partition import merge_redundant, partition_graph

    partitions = partition_graph(graph, limit=segment_limit)
    groups = merge_redundant(partitions)
    searched: Dict[Tuple, Schedule] = {}
    combined = Schedule(steps=[])
    for part in partitions:
        cached = searched.get(part.signature)
        if cached is None:
            sub = OperatorGraph(f"{graph.name}.part{part.index}")
            for op in part.ops:
                sub.add_operator(op)
            cached = Scheduler(sub, hw, config, n_split=n_split).schedule()
            searched[part.signature] = cached
        combined.steps.extend(cached.steps)
        if cached.degraded and not combined.degraded:
            combined.degraded = True
            combined.degraded_reason = (
                f"segment {part.index}: {cached.degraded_reason}"
            )
    return combined


def default_ntt_splits(
    n: int, min_tile: int = 64
) -> List[Tuple[int, int]]:
    """Candidate four-step splits near sqrt(N) (tiles must fill lanes)."""
    out = []
    for n1, n2 in power_of_two_splits(n, min_tile=min_tile):
        if n2 < min_tile:
            continue
        # Stay within 4x of square to bound the candidate count.
        if max(n1, n2) // min(n1, n2) <= 4:
            out.append((n1, n2))
    return out
