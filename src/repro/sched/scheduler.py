"""The CROPHE scheduling algorithm (paper Section V-D).

Bottom-up composition with dynamic programming:

1. enumerate candidate spatial groups as contiguous windows (size up to
   ``max_group_size``) of the topological order, with one
   :class:`~repro.sched.dataflow.SpatialGroupPlan` per (window structure,
   NTT split) pair — plans for structurally identical windows are
   memoized by signature (the paper's redundant-subgraph merging);
2. dynamic programming over the topological order picks the window
   sequence minimizing end-to-end time under the analytical cost model;
3. consecutive steps keep boundary tensors SRAM-resident when they fit
   (temporal pipelining) and keep constants on-chip across steps
   (temporal sharing), which the DP transition prices in.

The paper searches all subgraphs of a pre-partitioned graph exhaustively
(100 CPU-hours for ResNet-20); contiguous-window DP with memoization is
the tractable restriction we ship, with the window size and split
candidates exposed as knobs.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hw.config import HardwareConfig
from repro.ir.graph import OperatorGraph
from repro.ir.loops import power_of_two_splits
from repro.ir.operators import Operator
from repro.sched.dataflow import Schedule, ScheduledStep, SpatialGroupPlan


@dataclass(frozen=True)
class SchedulerConfig:
    """Search knobs.

    Attributes:
        max_group_size: largest spatial group considered (paper: 7-10).
        keep_fraction: fraction of SRAM a step may use to keep outputs
            resident for the next step.
        constant_residency_fraction: SRAM fraction reserved for constants
            held across steps (temporal sharing).
        min_ntt_tile: smallest N1/N2 tile for decomposed NTTs (tiles must
            still fill the PE lanes, Section V-D).
        constant_share: number of data-parallel clusters sharing each
            constant fetch (CROPHE-p); 1 for a whole-chip schedule.
    """

    max_group_size: int = 7
    keep_fraction: float = 0.5
    constant_residency_fraction: float = 0.4
    min_ntt_tile: int = 64
    constant_share: int = 1
    #: Workload segments are windows of one continuous program: their
    #: ciphertext inputs arrive SRAM-resident from the previous segment
    #: and their outputs stay on-chip for the next one (budget allowing).
    chained_io: bool = True
    #: Fine-grained temporal pipelining between consecutive groups: a
    #: boundary tensor whose producer/consumer loop nests share top loops
    #: streams through a granule-sized SRAM FIFO instead of spilling.
    #: CROPHE's middle hierarchy level; off for MAD (its fusion islands
    #: spill between groups).
    temporal_streaming: bool = True
    #: How many groups a deferred tensor may wait, holding only its
    #: granule, before a streamable consumer must arrive (the depth of a
    #: temporal pipelining group).  1 = adjacent groups only.
    stream_window: int = 6


@dataclass
class _DpState:
    """Forward DP state: cumulative time plus what lives in SRAM.

    ``pool`` holds intermediate tensors kept on-chip (uid -> bytes); a
    tensor leaves the pool when its last consumer has executed.  This is
    the top "sequential execution with fully materialized intermediates"
    level of the hierarchy: with enough SRAM, producer/consumer pairs far
    apart in the order still avoid the DRAM round trip.
    """

    seconds: float
    steps: List[ScheduledStep]
    pool: Dict[int, int] = field(default_factory=dict)
    resident_constants: Set[int] = field(default_factory=set)
    resident_constant_bytes: int = 0
    #: Boundary outputs whose write decision is deferred: a later step
    #: within the stream window may stream them (temporal pipelining),
    #: pool them, or finally spill them.  uid -> (bytes, age, producer
    #: plan).
    pending: Dict[int, Tuple[int, int, Optional[SpatialGroupPlan]]] = field(
        default_factory=dict
    )

    @property
    def pool_bytes(self) -> int:
        return sum(self.pool.values())


class Scheduler:
    """Searches cross-operator dataflow schedules for one graph."""

    def __init__(
        self,
        graph: OperatorGraph,
        hw: HardwareConfig,
        config: Optional[SchedulerConfig] = None,
        n_split: Optional[Tuple[int, int]] = None,
    ):
        self.graph = graph
        self.hw = hw
        self.config = config or SchedulerConfig()
        self.n_split = n_split
        self._plan_cache: Dict[Tuple, SpatialGroupPlan] = {}
        self.stats: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def _plan_for(self, window: Tuple[Operator, ...]) -> SpatialGroupPlan:
        """Plan construction, cached per window identity.

        Cross-structure redundancy merging (the same KeySwitch subgraph
        appearing many times) happens one level up: workloads expose
        repeated segments that are scheduled once and multiplied — see
        ``repro.workloads``.
        """
        key = tuple(op.uid for op in window)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = SpatialGroupPlan(self.graph, window, self.hw, self.n_split)
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------

    def schedule(self) -> Schedule:
        """Run the DP and return the best schedule found."""
        t0 = _time.time()
        order = self.graph.operators_topological()
        n = len(order)
        sram = self.hw.sram_capacity_bytes
        keep_budget = int(sram * self.config.keep_fraction)
        const_budget = int(sram * self.config.constant_residency_fraction)

        # Liveness: the last topological position consuming each tensor,
        # used to evict dead intermediates from the resident pool.
        pos = {op.uid: idx for idx, op in enumerate(order)}
        last_use: Dict[int, int] = {}
        for op in order:
            for t in op.inputs:
                last_use[t.uid] = max(last_use.get(t.uid, -1), pos[op.uid])

        dp: List[Optional[_DpState]] = [None] * (n + 1)
        initial_pool: Dict[int, int] = {}
        if self.config.chained_io:
            # Segment inputs arrive on-chip from the previous segment of
            # the surrounding program (budget allowing).
            from repro.ir.tensors import TensorKind

            used = 0
            for t in self.graph.graph_inputs():
                if t.kind is TensorKind.EXTERNAL and used + t.bytes <= keep_budget:
                    initial_pool[t.uid] = t.bytes
                    used += t.bytes
        dp[0] = _DpState(seconds=0.0, steps=[], pool=initial_pool)
        for i in range(n):
            state = dp[i]
            if state is None:
                continue
            for size in range(1, self.config.max_group_size + 1):
                if i + size > n:
                    break
                window = tuple(order[i: i + size])
                plan = self._plan_for(window)
                if not plan.feasible_allocation:
                    break
                if not plan.fits_buffer:
                    continue
                step, new_state = self._transition(
                    state, plan, keep_budget, const_budget,
                    end_pos=i + size, last_use=last_use,
                )
                j = i + size
                if dp[j] is None or new_state.seconds < dp[j].seconds:
                    dp[j] = new_state
        final = dp[n]
        if final is None:
            raise RuntimeError("scheduling failed: no feasible cover")
        # Settle any still-deferred outputs (graph results must land in
        # memory): charge their writes to the last step.  With chained
        # segment I/O the outputs stay on-chip for the next segment.
        if final.pending and final.steps and not self.config.chained_io:
            spill = sum(nbytes for nbytes, _, _ in final.pending.values())
            last = final.steps[-1]
            last.metrics.dram_write_bytes += spill
            last.seconds = max(
                last.seconds,
                last.metrics.dram_bytes
                / (self.hw.dram_bytes_per_second * 0.85),
            )
        self.stats["search_seconds"] = _time.time() - t0
        self.stats["plans_cached"] = len(self._plan_cache)
        return Schedule(steps=final.steps)

    def _consumed_uids(self, plan: SpatialGroupPlan) -> Set[int]:
        uids = set()
        for op in plan.ops:
            for t in op.inputs:
                uids.add(t.uid)
        return uids

    def _streamable(
        self,
        uid: int,
        prev_plan: Optional[SpatialGroupPlan],
        plan: SpatialGroupPlan,
    ) -> bool:
        """Can a deferred tensor stream from the previous group into this
        one (matched top loops across the boundary, Section V-A)?"""
        if prev_plan is None or not self.config.temporal_streaming:
            return False
        producer_op = None
        for op in prev_plan.ops:
            if any(t.uid == uid for t in op.outputs):
                producer_op = op
                break
        if producer_op is None:
            return False
        from repro.ir.loops import matched_prefix

        prod_nest = prev_plan.assignment.nest_of(producer_op)
        for op in plan.ops:
            if any(t.uid == uid for t in op.inputs):
                cons_nest = plan.assignment.nest_of(op)
                if matched_prefix(prod_nest, cons_nest) > 0:
                    return True
        return False

    def _transition(
        self,
        state: _DpState,
        plan: SpatialGroupPlan,
        keep_budget: int,
        const_budget: int,
        end_pos: int,
        last_use: Dict[int, int],
    ) -> Tuple[ScheduledStep, _DpState]:
        resident_constants = state.resident_constants
        consumed = self._consumed_uids(plan)
        window = max(self.config.stream_window, 1)
        # Evolve the resident pool: evict tensors dead after this window.
        new_pool = {
            uid: nbytes
            for uid, nbytes in state.pool.items()
            if last_use.get(uid, -1) >= end_pos
        }
        pool_bytes = sum(new_pool.values())

        # Settle deferred outputs: a tensor may wait up to the stream
        # window (holding only its granule) for a consumer whose loops
        # match, streaming through SRAM with no DRAM round trip — the
        # depth of a temporal pipelining group.  Consumers that arrive
        # with mismatched loops force the spill (their read was charged),
        # and tensors that outlive the window are spilled too.
        streamed: Set[int] = set()
        spill_bytes = 0
        new_pending: Dict[int, Tuple[int, int, Optional[SpatialGroupPlan]]] = {}
        for uid, (nbytes, age, producer_plan) in state.pending.items():
            live_later = last_use.get(uid, -1) >= end_pos
            consumed_now = uid in consumed
            if consumed_now and self._streamable(uid, producer_plan, plan):
                streamed.add(uid)
                if live_later:
                    if pool_bytes + nbytes <= keep_budget:
                        new_pool[uid] = nbytes
                        pool_bytes += nbytes
                    elif age + 1 < window:
                        new_pending[uid] = (nbytes, age + 1, producer_plan)
                    else:
                        spill_bytes += nbytes
                continue
            if consumed_now:
                # Unmatched consumer already charged its read: settle with
                # the spill write unless the pool can absorb the tensor.
                if pool_bytes + nbytes <= keep_budget:
                    new_pool[uid] = nbytes
                    pool_bytes += nbytes
                else:
                    spill_bytes += nbytes
                continue
            if pool_bytes + nbytes <= keep_budget and live_later:
                new_pool[uid] = nbytes
                pool_bytes += nbytes
            elif age + 1 < window and live_later:
                new_pending[uid] = (nbytes, age + 1, producer_plan)
            else:
                spill_bytes += nbytes

        resident_inputs = set(new_pool) | streamed | set(state.pool)
        # Outputs of this window: pool what fits, defer the rest.
        _, outs = plan.boundary()
        kept: Set[int] = set()
        for t in outs:
            if last_use.get(t.uid, -1) < end_pos:
                new_pending[t.uid] = (t.bytes, 0, plan)  # graph output
                kept.add(t.uid)  # defer the write
                continue
            if pool_bytes + t.bytes <= keep_budget:
                new_pool[t.uid] = t.bytes
                pool_bytes += t.bytes
                kept.add(t.uid)
            else:
                new_pending[t.uid] = (t.bytes, 0, plan)
                kept.add(t.uid)  # defer; a later transition settles it
        pending = new_pending
        seconds, metrics = plan.execution_seconds(
            resident_inputs=resident_inputs,
            resident_constants=resident_constants,
            kept_outputs=kept,
            constant_share=self.config.constant_share,
            extra_write_bytes=spill_bytes,
        )
        step = ScheduledStep(
            plan=plan,
            seconds=seconds,
            metrics=metrics,
            resident_inputs=resident_inputs,
            resident_constants=set(resident_constants),
            kept_outputs=kept,
        )
        # Update the resident-constant pool (kept while the budget holds).
        new_consts = set(state.resident_constants)
        new_const_bytes = state.resident_constant_bytes
        for uid, nbytes in plan.metrics.constant_bytes.items():
            if uid not in new_consts and new_const_bytes + nbytes <= const_budget:
                new_consts.add(uid)
                new_const_bytes += nbytes
        new_state = _DpState(
            seconds=state.seconds + seconds,
            steps=state.steps + [step],
            pool=new_pool,
            resident_constants=new_consts,
            resident_constant_bytes=new_const_bytes,
            pending=pending,
        )
        return step, new_state


def schedule_graph(
    graph: OperatorGraph,
    hw: HardwareConfig,
    config: Optional[SchedulerConfig] = None,
    candidate_splits: Optional[Sequence[Optional[Tuple[int, int]]]] = None,
) -> Schedule:
    """Schedule a graph, trying each candidate NTT split and keeping the
    fastest result (the scheduler-level half of Section V-B)."""
    if candidate_splits is None:
        candidate_splits = [None]
    best: Optional[Schedule] = None
    for split in candidate_splits:
        sched = Scheduler(graph, hw, config, n_split=split).schedule()
        if best is None or sched.total_seconds < best.total_seconds:
            best = sched
    assert best is not None
    return best


def schedule_partitioned(
    graph: OperatorGraph,
    hw: HardwareConfig,
    config: Optional[SchedulerConfig] = None,
    n_split: Optional[Tuple[int, int]] = None,
    segment_limit: int = 25,
) -> Schedule:
    """Schedule a large graph via pre-partitioning with merging.

    The paper's path for ResNet-scale graphs (Section V-D): partition
    into acyclic segments of at most ``segment_limit`` operators, search
    each *distinct* segment structure once, and reuse the result for its
    structural twins — the twins share the representative's scheduled
    steps, whose costs are identical by construction of the signature.
    """
    from repro.sched.partition import merge_redundant, partition_graph

    partitions = partition_graph(graph, limit=segment_limit)
    groups = merge_redundant(partitions)
    searched: Dict[Tuple, Schedule] = {}
    combined = Schedule(steps=[])
    for part in partitions:
        cached = searched.get(part.signature)
        if cached is None:
            sub = OperatorGraph(f"{graph.name}.part{part.index}")
            for op in part.ops:
                sub.add_operator(op)
            cached = Scheduler(sub, hw, config, n_split=n_split).schedule()
            searched[part.signature] = cached
        combined.steps.extend(cached.steps)
    return combined


def default_ntt_splits(
    n: int, min_tile: int = 64
) -> List[Tuple[int, int]]:
    """Candidate four-step splits near sqrt(N) (tiles must fill lanes)."""
    out = []
    for n1, n2 in power_of_two_splits(n, min_tile=min_tile):
        if n2 < min_tile:
            continue
        # Stay within 4x of square to bound the candidate count.
        if max(n1, n2) // min(n1, n2) <= 4:
            out.append((n1, n2))
    return out
