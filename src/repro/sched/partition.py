"""Graph pre-partitioning with redundant-subgraph merging (Section V-D).

Large workload graphs (ResNet-scale) are too big to search directly; the
paper pre-partitions the computational graph into acyclic segments of at
most ~25 operators and merges structurally identical segments so each is
searched only once.  :func:`partition_graph` walks a topological order
and cuts segments at the size limit, preferring cut points with few live
tensors (cheap boundaries); :func:`merge_redundant` groups segments by
structural signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.ir.graph import OperatorGraph
from repro.ir.operators import Operator
from repro.resilience.errors import ConfigError

#: The paper's empirical segment-size limit.
DEFAULT_SEGMENT_LIMIT = 25


@dataclass
class GraphPartition:
    """One acyclic segment of a partitioned graph."""

    index: int
    ops: Tuple[Operator, ...]
    signature: Tuple = ()

    @property
    def size(self) -> int:
        return len(self.ops)


def _live_tensor_count(
    graph: OperatorGraph, order: Sequence[Operator], position: int
) -> int:
    """Tensors produced at or before ``position`` and consumed after it."""
    produced = set()
    for op in order[: position + 1]:
        for t in op.outputs:
            produced.add(t.uid)
    live = 0
    for op in order[position + 1:]:
        for t in op.inputs:
            if t.uid in produced:
                live += 1
                produced.discard(t.uid)  # count each tensor once
    return live


def partition_graph(
    graph: OperatorGraph,
    limit: int = DEFAULT_SEGMENT_LIMIT,
    cut_window: int = 5,
) -> List[GraphPartition]:
    """Cut a topological order into segments of at most ``limit`` ops.

    Within the last ``cut_window`` candidate positions of each segment,
    the cut with the fewest live (crossing) tensors is chosen, which
    keeps segment boundaries cheap — crossing tensors must materialize.
    Cutting a topological order always yields acyclic segments with
    forward-only dependencies (the constraint of [41]).
    """
    if limit < 1:
        raise ConfigError(
            "limit", limit, "segments must hold at least one operator"
        )
    if cut_window < 0:
        raise ConfigError(
            "cut_window", cut_window, "the cut window cannot be negative"
        )
    order = graph.operators_topological()
    partitions: List[GraphPartition] = []
    start = 0
    index = 0
    while start < len(order):
        end = min(start + limit, len(order))
        if end < len(order):
            # Choose the cheapest cut within the window [end-window, end].
            best_end = end
            best_live = None
            lo = max(start + 1, end - cut_window)
            for candidate in range(lo, end + 1):
                live = _live_tensor_count(graph, order, candidate - 1)
                if best_live is None or live < best_live:
                    best_live = live
                    best_end = candidate
            end = best_end
        ops = tuple(order[start:end])
        partitions.append(
            GraphPartition(
                index=index,
                ops=ops,
                signature=graph.subgraph_signature(ops),
            )
        )
        index += 1
        start = end
    return partitions


def merge_redundant(
    partitions: Sequence[GraphPartition],
) -> Dict[Tuple, List[GraphPartition]]:
    """Group segments by structural signature.

    Each group is searched once and the result reused for every member —
    e.g. the KeySwitch subgraph appearing throughout a workload.
    """
    groups: Dict[Tuple, List[GraphPartition]] = {}
    for p in partitions:
        groups.setdefault(p.signature, []).append(p)
    return groups


def redundancy_factor(partitions: Sequence[GraphPartition]) -> float:
    """How much work merging saves: segments per distinct structure."""
    if not partitions:
        return 1.0
    groups = merge_redundant(partitions)
    return len(partitions) / len(groups)
