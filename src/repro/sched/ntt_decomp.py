"""NTT decomposition analysis (Section V-B).

The four-step decomposition turns each monolithic (i)NTT into column and
row phases with a transpose between them, exposing independent ``N1`` /
``N2`` loops that the scheduler matches against neighbouring operators.
This module provides the scheduler-side analysis:

* :func:`candidate_splits` — the ``N = N1 x N2`` combinations worth
  enumerating (tiles must fill the PE lanes, so few survive);
* :func:`orientation_switch_report` — counts costly orientation switches
  of a graph under a given split (the Figure 7 "2x fewer" claim is a
  testable property of this report);
* :func:`decomposition_overhead` — extra operators/tensors the
  decomposition introduces, which the cost model weighs against the
  pipelining benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.graph import OperatorGraph
from repro.ir.loops import power_of_two_splits
from repro.ir.operators import OpKind
from repro.sched.tiling import assign_loop_nests, count_orientation_switches


def candidate_splits(
    n: int, lanes_per_pe: int = 256, max_aspect: int = 4
) -> List[Tuple[int, int]]:
    """Four-step splits worth searching.

    Section V-D: "N1 and N2 should not be too small; otherwise the
    decomposed small NTTs cannot fully utilize the multiple lanes in the
    PE" — so both tiles must be at least the lane count, and we bound the
    aspect ratio to keep the candidate set small.
    """
    out = []
    for n1, n2 in power_of_two_splits(n, min_tile=lanes_per_pe):
        if n2 < lanes_per_pe:
            continue
        if max(n1, n2) // min(n1, n2) <= max_aspect:
            out.append((n1, n2))
    return out


@dataclass
class OrientationReport:
    """Costly orientation switches of a graph under one nest assignment."""

    total_edges: int
    switches: int
    ntt_instances: float

    @property
    def switches_per_ntt(self) -> float:
        if self.ntt_instances == 0:
            return 0.0
        return self.switches / self.ntt_instances


def orientation_switch_report(
    graph: OperatorGraph, n_split: Optional[Tuple[int, int]] = None
) -> OrientationReport:
    """Count costly orientation switches under greedy nest assignment."""
    ops = graph.operators_topological()
    assignment = assign_loop_nests(graph, ops, n_split)
    switches = count_orientation_switches(graph, ops, assignment)
    edges = sum(len(graph.successors(op)) for op in ops)
    monolithic = sum(1 for op in ops if op.kind.is_monolithic_ntt)
    phases = sum(1 for op in ops if op.kind.is_ntt_phase)
    return OrientationReport(
        total_edges=edges,
        switches=switches,
        ntt_instances=monolithic + phases / 2.0,
    )


@dataclass
class DecompositionOverhead:
    """Structural cost of decomposing every (i)NTT in a graph."""

    extra_operators: int
    transpose_operators: int
    extra_tensor_bytes: int


def decomposition_overhead(
    mono_graph: OperatorGraph, dec_graph: OperatorGraph
) -> DecompositionOverhead:
    """Compare a graph built monolithically vs. four-step."""
    transposes = sum(
        1 for op in dec_graph.operators if op.kind is OpKind.TRANSPOSE
    )
    mono_bytes = sum(t.bytes for t in mono_graph.tensors)
    dec_bytes = sum(t.bytes for t in dec_graph.tensors)
    return DecompositionOverhead(
        extra_operators=dec_graph.num_operators - mono_graph.num_operators,
        transpose_operators=transposes,
        extra_tensor_bytes=max(dec_bytes - mono_bytes, 0),
    )
