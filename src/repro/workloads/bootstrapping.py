"""The bootstrapping workload (sparse-packed method [14], [25]).

Structure mirrors ``repro.fhe.bootstrap``:

* **CoeffToSlot** — three level-collapsed BSGS PtMatVecMult stages (the
  standard radix decomposition of the DFT matrix), each dominated by
  HRot and therefore by evk traffic;
* **EvalMod** — a Chebyshev/double-angle polynomial evaluation: a chain
  of HMult + CMult + rescale steps;
* **SlotToCoeff** — three more BSGS stages.

Repeated structures are emitted once as segments with repeat counts
(pre-partitioning + redundant-subgraph merging, Section V-D).
"""

from __future__ import annotations

from typing import Optional

from repro.fhe.params import CKKSParams
from repro.ir.builders import GraphBuilder
from repro.ir.operators import Operator, OpKind
from repro.workloads.base import Workload, WorkloadOptions, WorkloadSegment

#: Radix decomposition of the homomorphic DFT: 3 stages per transform.
C2S_STAGES = 3
S2C_STAGES = 3
#: BSGS split per stage (stage matrix has ~n1*n2 nonzero diagonals).
STAGE_N1 = 8
STAGE_N2 = 4
#: EvalMod: degree-31 polynomial via BSGS evaluation + double angles.
EVALMOD_MULT_STEPS = 12


def _mod_raise_segment(
    params: CKKSParams, options: WorkloadOptions
) -> WorkloadSegment:
    """ModRaise: re-extend the level-0 limbs to the full basis.

    One iNTT of the single remaining limb, a 1 -> L+1 BConv, and the
    forward NTT over the new basis.
    """
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    limbs = params.max_level + 1
    src = b.input_ciphertext("boot.in", 0)
    for poly_t, side in ((src.b, "b"), (src.a, "a")):
        coeff = b.ntt(poly_t, 1, inverse=True, tag=f"modraise.{side}.intt")
        spread = b.poly(f"modraise.{side}.spread", limbs)
        b.graph.add_operator(
            Operator(
                name=b._name(f"modraise.{side}.bconv"),
                kind=OpKind.BCONV,
                limbs=1,
                out_limbs=limbs,
                n=params.n,
                inputs=[coeff, b.bconv_matrix(1, limbs, "modraise")],
                outputs=[spread],
                tag="modraise",
            )
        )
        b.ntt(spread, limbs, inverse=False, tag=f"modraise.{side}.ntt")
    return WorkloadSegment("mod_raise", b.graph, repeat=1)


def _transform_segment(
    params: CKKSParams,
    options: WorkloadOptions,
    level: int,
    name: str,
) -> WorkloadSegment:
    """One CoeffToSlot/SlotToCoeff stage: a BSGS matmul at ``level``."""
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    ct = b.input_ciphertext(f"{name}.in", level)
    b.bsgs_matvec(
        ct,
        STAGE_N1,
        STAGE_N2,
        strategy=options.rotation_strategy,
        r_hyb=options.r_hyb,
        tag=name,
    )
    return WorkloadSegment(name, b.graph, repeat=1)


def _evalmod_step_segment(
    params: CKKSParams, options: WorkloadOptions, level: int
) -> WorkloadSegment:
    """One EvalMod step: HMult + CMult + rescale at a mid level."""
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    x = b.input_ciphertext("em.x", level)
    y = b.input_ciphertext("em.y", level)
    prod = b.hmult(x, y, tag="em.hmult")
    scaled = b.pmult(prod, tag="em.cmult")
    b.rescale(scaled, tag="em.rescale")
    return WorkloadSegment("evalmod_step", b.graph, repeat=EVALMOD_MULT_STEPS)


_BUILD_CACHE: dict = {}


def build_bootstrapping(
    params: CKKSParams, options: Optional[WorkloadOptions] = None
) -> Workload:
    """Build the bootstrapping workload for a parameter set.

    Builds are memoized per (params, options): the graphs are immutable
    once built, and HELR/ResNet reuse the bootstrap segments (with their
    own repeat counts), so sharing them keeps scheduling costs down — the
    cross-workload face of the paper's redundant-subgraph merging.
    """
    options = options or WorkloadOptions()
    cache_key = (params, options)
    cached = _BUILD_CACHE.get(cache_key)
    if cached is not None:
        return cached
    top = params.max_level
    boot = params.boot_levels or max(top - 3, 1)
    segments = [_mod_raise_segment(params, options)]
    # CoeffToSlot: three distinct stages near the top of the budget, each
    # at its own level with its own rotation keys (the stages use
    # different DFT radices, so their evks do not overlap).
    for stage in range(C2S_STAGES):
        segments.append(
            _transform_segment(
                params, options, max(top - stage, 1), f"coeff_to_slot{stage}"
            )
        )
    # EvalMod: a chain of multiply steps at descending mid levels; steps
    # at the same structural level are merged (two per level keeps the
    # relin-key diversity realistic without one graph per step).
    em_top = min(max(top - C2S_STAGES, EVALMOD_MULT_STEPS // 2 + 2), top)
    for half in range(EVALMOD_MULT_STEPS // 2):
        level = min(max(em_top - 2 * half, 2), top)
        seg = _evalmod_step_segment(params, options, level)
        seg.name = f"evalmod_step{half}"
        seg.repeat = 2
        segments.append(seg)
    # SlotToCoeff: three distinct stages at the bottom of the budget.
    for stage in range(S2C_STAGES):
        level = min(max(top - boot + S2C_STAGES - stage, S2C_STAGES), top)
        segments.append(
            _transform_segment(params, options, level, f"slot_to_coeff{stage}")
        )
    workload = Workload(
        name="bootstrapping",
        params=params,
        segments=segments,
        description=(
            "Sparse-packed CKKS bootstrapping: ModRaise, 3-stage "
            "CoeffToSlot, EvalMod (degree-31 sine approximation), "
            "3-stage SlotToCoeff."
        ),
    )
    _BUILD_CACHE[cache_key] = workload
    return workload
