"""Workload containers and build options."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fhe.params import CKKSParams
from repro.ir.graph import OperatorGraph
from repro.resilience.errors import ConfigError

#: Baby-step strategies the graph builders implement.
ROTATION_STRATEGIES = ("plain", "min-ks", "hoisting", "hybrid")

#: Build-time lowering modes a workload can be emitted at: ``"full"``
#: builds the historical fully decomposed graphs; ``"primitive"`` keeps
#: key switches and baby-rotation batches as coarse operators for the
#: :mod:`repro.passes` pipeline to lower.
WORKLOAD_LOWERINGS = ("full", "primitive")


@dataclass(frozen=True)
class WorkloadOptions:
    """Dataflow-relevant build options.

    Attributes:
        ntt_split: four-step split applied to every (i)NTT, or ``None``
            for monolithic NTTs (the NTTDec ablation knob).
        rotation_strategy: baby-step strategy ("min-ks" / "hoisting" /
            "hybrid") — the HybRot ablation knob.
        r_hyb: hybrid coarse-step distance (the Section V-C parameter;
            the experiment driver enumerates a few values and keeps the
            fastest, mirroring the per-graph enumeration of Section V-D).
        lowering: emission level, one of :data:`WORKLOAD_LOWERINGS` —
            ``"primitive"`` builds coarse graphs for the
            :mod:`repro.passes` pipeline to lower (``ntt_split`` is then
            recorded but applied by the decompose-ntt rewrite instead of
            at build time).
    """

    ntt_split: Optional[Tuple[int, int]] = None
    rotation_strategy: str = "hybrid"
    r_hyb: int = 4
    lowering: str = "full"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject build options no graph builder can honour.

        Raises:
            ConfigError: naming the offending field.
        """
        if self.rotation_strategy not in ROTATION_STRATEGIES:
            raise ConfigError(
                "rotation_strategy", self.rotation_strategy,
                f"choose from {ROTATION_STRATEGIES}",
            )
        if self.lowering not in WORKLOAD_LOWERINGS:
            raise ConfigError(
                "lowering", self.lowering,
                f"choose from {WORKLOAD_LOWERINGS}",
            )
        if not isinstance(self.r_hyb, int) or self.r_hyb < 1:
            raise ConfigError(
                "r_hyb", self.r_hyb,
                "the hybrid coarse-step distance must be an int >= 1",
            )
        if self.ntt_split is not None:
            n1, n2 = self.ntt_split
            for name, value in (("ntt_split[0]", n1), ("ntt_split[1]", n2)):
                if (
                    not isinstance(value, int)
                    or value < 2
                    or value & (value - 1)
                ):
                    raise ConfigError(
                        name, value,
                        "four-step factors must be powers of two >= 2",
                    )


@dataclass
class WorkloadSegment:
    """A distinct subgraph scheduled once and executed ``repeat`` times."""

    name: str
    graph: OperatorGraph
    repeat: int = 1

    @property
    def num_operators(self) -> int:
        return self.graph.num_operators


@dataclass
class Workload:
    """A full benchmark: named segments with repeat counts."""

    name: str
    params: CKKSParams
    segments: List[WorkloadSegment] = field(default_factory=list)
    description: str = ""

    @property
    def total_operators(self) -> int:
        return sum(s.num_operators * s.repeat for s in self.segments)

    @property
    def distinct_operators(self) -> int:
        return sum(s.num_operators for s in self.segments)

    def segment(self, name: str) -> WorkloadSegment:
        """Look up a segment by name."""
        for s in self.segments:
            if s.name == name:
                return s
        raise KeyError(f"no segment {name!r} in workload {self.name}")
