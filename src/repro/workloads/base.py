"""Workload containers and build options."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fhe.params import CKKSParams
from repro.ir.graph import OperatorGraph


@dataclass(frozen=True)
class WorkloadOptions:
    """Dataflow-relevant build options.

    Attributes:
        ntt_split: four-step split applied to every (i)NTT, or ``None``
            for monolithic NTTs (the NTTDec ablation knob).
        rotation_strategy: baby-step strategy ("min-ks" / "hoisting" /
            "hybrid") — the HybRot ablation knob.
        r_hyb: hybrid coarse-step distance (the Section V-C parameter;
            the experiment driver enumerates a few values and keeps the
            fastest, mirroring the per-graph enumeration of Section V-D).
    """

    ntt_split: Optional[Tuple[int, int]] = None
    rotation_strategy: str = "hybrid"
    r_hyb: int = 4


@dataclass
class WorkloadSegment:
    """A distinct subgraph scheduled once and executed ``repeat`` times."""

    name: str
    graph: OperatorGraph
    repeat: int = 1

    @property
    def num_operators(self) -> int:
        return self.graph.num_operators


@dataclass
class Workload:
    """A full benchmark: named segments with repeat counts."""

    name: str
    params: CKKSParams
    segments: List[WorkloadSegment] = field(default_factory=list)
    description: str = ""

    @property
    def total_operators(self) -> int:
        return sum(s.num_operators * s.repeat for s in self.segments)

    @property
    def distinct_operators(self) -> int:
        return sum(s.num_operators for s in self.segments)

    def segment(self, name: str) -> WorkloadSegment:
        """Look up a segment by name."""
        for s in self.segments:
            if s.name == name:
                return s
        raise KeyError(f"no segment {name!r} in workload {self.name}")
