"""Workload operator-graph generators.

The four evaluation workloads of Section VI: CKKS bootstrapping,
HELR-1024 logistic-regression training, and ResNet-20/ResNet-110
encrypted inference.  A workload is a list of *segments* — operator
graphs scheduled once and repeated — which realizes the paper's
pre-partitioning with redundant-subgraph merging: the same KeySwitch /
BSGS / EvalMod structure appearing many times is searched only once.
"""

from repro.workloads.base import Workload, WorkloadSegment, WorkloadOptions
from repro.workloads.bootstrapping import build_bootstrapping
from repro.workloads.helr import build_helr
from repro.workloads.resnet import build_resnet20, build_resnet110

WORKLOAD_BUILDERS = {
    "bootstrapping": build_bootstrapping,
    "helr": build_helr,
    "resnet20": build_resnet20,
    "resnet110": build_resnet110,
}

__all__ = [
    "Workload",
    "WorkloadSegment",
    "WorkloadOptions",
    "build_bootstrapping",
    "build_helr",
    "build_resnet20",
    "build_resnet110",
    "WORKLOAD_BUILDERS",
]
