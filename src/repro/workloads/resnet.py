"""ResNet-20 / ResNet-110 encrypted CIFAR-10 inference [26], [38].

Following the multiplexed-parallel-convolution CKKS lowering of Lee et
al. [38], each residual layer becomes

* two convolution kernels, each lowered to BSGS plaintext matmuls over
  the packed feature map (HRot-heavy, like the bootstrap transforms);
* a degree-27 minimax ReLU polynomial (a chain of HMult + CMult);
* periodic bootstrapping (the level budget covers roughly one layer, so
  inference bootstraps about once per layer).

ResNet-110 is the same per-layer structure with 110 layers — included,
as in the paper, to show the scheduling scales to large workloads (the
segment/repeat mechanism keeps the search cost identical to ResNet-20).
"""

from __future__ import annotations

from typing import Optional

from repro.fhe.params import CKKSParams
from repro.ir.builders import GraphBuilder
from repro.workloads import bootstrapping as boot_mod
from repro.workloads.base import Workload, WorkloadOptions, WorkloadSegment

#: BSGS split for the per-layer convolution matmuls.
CONV_N1 = 8
CONV_N2 = 4
#: HMult steps in the degree-27 ReLU approximation (Paterson-Stockmeyer).
RELU_MULTS = 8


def _conv_segment(
    params: CKKSParams, options: WorkloadOptions, level: int
) -> WorkloadSegment:
    """One convolution kernel as a BSGS plaintext matmul."""
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    ct = b.input_ciphertext("conv.in", level)
    b.bsgs_matvec(
        ct,
        CONV_N1,
        CONV_N2,
        strategy=options.rotation_strategy,
        r_hyb=options.r_hyb,
        tag="conv",
    )
    return WorkloadSegment("conv", b.graph, repeat=1)


def _relu_segment(
    params: CKKSParams, options: WorkloadOptions, level: int
) -> WorkloadSegment:
    """Degree-27 polynomial ReLU: HMult + CMult + rescale chain."""
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    x = b.input_ciphertext("relu.x", level)
    y = b.input_ciphertext("relu.y", level)
    prod = b.hmult(x, y, tag="relu.hmult")
    scaled = b.pmult(prod, tag="relu.cmult")
    b.rescale(scaled, tag="relu.rescale")
    return WorkloadSegment("relu_step", b.graph, repeat=RELU_MULTS)


_SEGMENT_CACHE: dict = {}


def _build_resnet(
    params: CKKSParams,
    options: Optional[WorkloadOptions],
    layers: int,
    name: str,
) -> Workload:
    options = options or WorkloadOptions()
    cache_key = (params, options, layers)
    cached = _SEGMENT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    usable = max(params.max_level - params.boot_levels, RELU_MULTS + 2)
    conv_level = usable
    relu_level = max(usable - 2, 2)
    seg_key = (params, options)
    base_segs = _SEGMENT_CACHE.get(("segs",) + seg_key)
    if base_segs is None:
        base_segs = (
            _conv_segment(params, options, conv_level),
            _relu_segment(params, options, relu_level),
        )
        _SEGMENT_CACHE[("segs",) + seg_key] = base_segs
    conv = WorkloadSegment("conv", base_segs[0].graph, 2 * layers)
    relu = WorkloadSegment("relu_step", base_segs[1].graph, RELU_MULTS * layers)
    segments = [conv, relu]
    # ~one bootstrap per layer (the level budget covers one conv+ReLU).
    # Bootstrap graphs come from the shared memoized build; fresh segment
    # wrappers carry the per-network repeat counts.
    boot = boot_mod.build_bootstrapping(params, options)
    segments.extend(
        WorkloadSegment(s.name, s.graph, s.repeat * layers)
        for s in boot.segments
    )
    workload = Workload(
        name=name,
        params=params,
        segments=segments,
        description=(
            f"{name}: {layers} residual layers, each two multiplexed "
            "convolutions (BSGS matmuls), a degree-27 ReLU polynomial, "
            "and one bootstrap."
        ),
    )
    _SEGMENT_CACHE[cache_key] = workload
    return workload


def build_resnet20(
    params: CKKSParams, options: Optional[WorkloadOptions] = None
) -> Workload:
    """ResNet-20 encrypted inference workload."""
    return _build_resnet(params, options, layers=20, name="resnet20")


def build_resnet110(
    params: CKKSParams, options: Optional[WorkloadOptions] = None
) -> Workload:
    """ResNet-110 encrypted inference workload (scale test)."""
    return _build_resnet(params, options, layers=110, name="resnet110")
