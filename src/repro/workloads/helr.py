"""HELR-1024: homomorphic logistic-regression training [24].

One iteration trains a 196-element weight vector on a batch of 1024
MNIST images (14 x 14 pixels packed per ciphertext):

* the inner products between the weight vector and the batch use
  rotate-and-sum reductions (log2 trees of HRot + HAdd);
* the sigmoid is a degree-7 polynomial (3 HMult levels);
* the gradient update is PMult/HAdd;
* every iteration ends bootstrapping the weight ciphertext (HELR burns
  its whole level budget each iteration, which is why the baselines'
  papers all report it bootstrap-bound).

The reported metric is the average time per iteration (the paper trains
32 iterations and averages, which is equivalent under per-iteration
repetition).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.fhe.params import CKKSParams
from repro.ir.builders import GraphBuilder
from repro.workloads import bootstrapping as boot_mod
from repro.workloads.base import Workload, WorkloadOptions, WorkloadSegment

#: Features per sample (14 x 14 MNIST crops).
FEATURES = 196
#: Ciphertexts holding the batch (1024 samples packed by slot count).
BATCH_CTS = 4
#: Sigmoid polynomial degree (deg-7 minimax approximation).
SIGMOID_MULTS = 3


def _gradient_segment(
    params: CKKSParams, options: WorkloadOptions, level: int
) -> WorkloadSegment:
    """Inner products + sigmoid + gradient update for one batch chunk."""
    b = GraphBuilder(
        params, ntt_split=options.ntt_split, lowering=options.lowering,
    )
    w = b.input_ciphertext("helr.w", level)
    x = b.input_ciphertext("helr.x", level)
    # w . x per sample: HMult then a rotate-and-sum tree over features.
    prod = b.hmult(w, x, tag="helr.wx")
    reduce_steps = int(math.ceil(math.log2(FEATURES)))
    acc = prod
    for s in range(reduce_steps):
        rotated = b.hrot(acc, 1 << s, tag=f"helr.redrot{s}")
        acc = b.hadd(acc, rotated, tag=f"helr.redadd{s}")
    # Sigmoid: HMult chain with rescales.
    sig = acc
    lvl = level
    for m in range(SIGMOID_MULTS):
        sig = b.hmult(sig, sig, tag=f"helr.sig{m}")
        sig = b.rescale(sig, tag=f"helr.sigrs{m}")
        # Rebuild the pair at the lower level for the next chain step.
        lvl -= 1
        sig = b.pmult(sig, tag=f"helr.sigc{m}")
    # Gradient accumulate onto the weights (the running weight ciphertext
    # arrives at the gradient's level after its own rescales).
    grad = b.pmult(sig, tag="helr.grad")
    w_low = b.input_ciphertext("helr.wlow", grad.level)
    b.hadd(grad, b.pmult(w_low, tag="helr.wscale"), tag="helr.update")
    return WorkloadSegment("helr_gradient", b.graph, repeat=BATCH_CTS)


def build_helr(
    params: CKKSParams, options: Optional[WorkloadOptions] = None
) -> Workload:
    """One HELR-1024 training iteration (gradient + bootstrap)."""
    options = options or WorkloadOptions()
    grad_level = max(params.max_level - params.boot_levels, SIGMOID_MULTS + 2)
    segments = [_gradient_segment(params, options, grad_level)]
    # Weight refresh: a full bootstrap per iteration.  The bootstrap
    # segments come from the shared (memoized) build; wrap them in fresh
    # WorkloadSegment objects so repeat counts never mutate shared state.
    boot = boot_mod.build_bootstrapping(params, options)
    segments.extend(
        WorkloadSegment(s.name, s.graph, s.repeat) for s in boot.segments
    )
    return Workload(
        name="helr",
        params=params,
        segments=segments,
        description=(
            "HELR-1024 logistic regression, per-iteration cost: "
            f"{BATCH_CTS} gradient chunks (rotate-and-sum inner products, "
            "degree-7 sigmoid) plus one bootstrap."
        ),
    )
