"""Homomorphic polynomial evaluation.

Polynomial evaluation is the computational core of EvalMod (the sine
approximation of bootstrapping) and of the polynomial activations in
encrypted inference (the ReLU approximations of the ResNet workload).
Three evaluators are provided:

* :func:`horner` — depth ``d`` multiplications for degree ``d``;
* :func:`paterson_stockmeyer` — ``~2*sqrt(d)`` non-scalar
  multiplications via baby/giant powers (the standard choice for the
  degree-27+ polynomials in the paper's workloads);
* :func:`chebyshev_eval` — evaluates a Chebyshev-basis expansion with
  the same baby-step/giant-step structure (numerically preferable for
  minimax approximations on an interval).

All evaluators operate on ciphertexts and track levels/scales through
``repro.fhe.ops``; tests validate them against plain numpy evaluation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.fhe import ops
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import CKKSContext
from repro.resilience.errors import InvariantViolation


def _mul(ctx: CKKSContext, a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Level-aligned ciphertext multiply + rescale."""
    if a.level > b.level:
        a = ops.level_down(a, b.level)
    elif b.level > a.level:
        b = ops.level_down(b, a.level)
    return ops.rescale(ctx, ops.multiply(ctx, a, b))


def _add(ctx: CKKSContext, a: Ciphertext, b: Ciphertext) -> Ciphertext:
    if a.level > b.level:
        a = ops.level_down(a, b.level)
    elif b.level > a.level:
        b = ops.level_down(b, a.level)
    # Align nominal scales (they drift by < 0.1% across rescales).
    b = b.copy()
    b.scale = a.scale
    return ops.add(a, b)


def horner(
    ctx: CKKSContext, ct: Ciphertext, coeffs: Sequence[complex]
) -> Ciphertext:
    """Evaluate ``sum coeffs[i] * x^i`` by Horner's rule.

    Consumes one level per degree; best for small degrees.
    """
    if len(coeffs) == 0:
        raise ValueError("need at least one coefficient")
    degree = len(coeffs) - 1
    if degree == 0:
        out = ops.mul_scalar(ctx, ct, 0.0)
        out = ops.rescale(ctx, out)
        return ops.add_scalar(ctx, out, coeffs[0])
    acc = ops.rescale(ctx, ops.mul_scalar(ctx, ct, coeffs[degree]))
    for d in range(degree - 1, 0, -1):
        if coeffs[d]:
            acc = ops.add_scalar(ctx, acc, coeffs[d])
        acc = _mul(ctx, acc, ct)
    return ops.add_scalar(ctx, acc, coeffs[0])


def _power_basis(
    ctx: CKKSContext, ct: Ciphertext, max_power: int
) -> List[Optional[Ciphertext]]:
    """Powers ``x^1 .. x^max_power`` by repeated squaring/multiplying."""
    powers: List[Optional[Ciphertext]] = [None] * (max_power + 1)
    powers[1] = ct
    for p in range(2, max_power + 1):
        half = p // 2
        other = p - half
        if powers[half] is None or powers[other] is None:
            raise InvariantViolation(
                "repro.fhe.polyeval._power_basis",
                f"powers {half} and {other} must precede power {p}",
            )
        powers[p] = _mul(ctx, powers[half], powers[other])
    return powers


def paterson_stockmeyer(
    ctx: CKKSContext, ct: Ciphertext, coeffs: Sequence[complex]
) -> Ciphertext:
    """Evaluate a polynomial with ~2*sqrt(d) ciphertext multiplications.

    Split degree ``d`` as blocks of size ``k ~ sqrt(d)``: precompute baby
    powers ``x^1..x^k`` and giant powers ``x^k, x^2k, ...``; each block
    is a scalar combination of baby powers, then blocks combine with
    giant-step multiplications.
    """
    degree = len(coeffs) - 1
    if degree <= 2:
        return horner(ctx, ct, coeffs)
    k = max(2, int(math.isqrt(degree)))
    num_blocks = -(-(degree + 1) // k)
    baby = _power_basis(ctx, ct, k)

    def eval_block(block_coeffs: Sequence[complex]) -> Optional[Ciphertext]:
        """Scalar-combine baby powers for one block (degree < k)."""
        acc: Optional[Ciphertext] = None
        for i, c in enumerate(block_coeffs):
            if not c:
                continue
            if i == 0:
                # Constant term handled by add_scalar at the end.
                continue
            term = ops.rescale(ctx, ops.mul_scalar(ctx, baby[i], c))
            acc = term if acc is None else _add(ctx, acc, term)
        if acc is not None and block_coeffs[0]:
            acc = ops.add_scalar(ctx, acc, block_coeffs[0])
        elif acc is None and block_coeffs[0]:
            zero = ops.rescale(ctx, ops.mul_scalar(ctx, ct, 0.0))
            acc = ops.add_scalar(ctx, zero, block_coeffs[0])
        return acc

    giant = baby[k]
    if giant is None:
        raise InvariantViolation(
            "repro.fhe.polyeval.paterson_stockmeyer",
            f"giant step x^{k} missing from the baby-step table",
        )
    result: Optional[Ciphertext] = None
    # Evaluate blocks from the highest down: result = result*x^k + block.
    for b in range(num_blocks - 1, -1, -1):
        block = list(coeffs[b * k: (b + 1) * k])
        block += [0.0] * (k - len(block))
        block_ct = eval_block(block)
        if result is not None:
            result = _mul(ctx, result, giant)
            if block_ct is not None:
                result = _add(ctx, result, block_ct)
        else:
            result = block_ct
    if result is None:
        raise ValueError("zero polynomial")
    return result


def chebyshev_coefficients(
    fn, degree: int, num_points: Optional[int] = None
) -> np.ndarray:
    """Chebyshev-basis coefficients of ``fn`` on [-1, 1] (DCT method)."""
    m = num_points or (degree + 1)
    k = np.arange(m)
    nodes = np.cos(np.pi * (k + 0.5) / m)
    values = np.array([fn(x) for x in nodes])
    coeffs = np.zeros(degree + 1)
    for j in range(degree + 1):
        coeffs[j] = (2.0 / m) * np.sum(
            values * np.cos(np.pi * j * (k + 0.5) / m)
        )
    coeffs[0] /= 2.0
    return coeffs


def chebyshev_eval(
    ctx: CKKSContext, ct: Ciphertext, cheb_coeffs: Sequence[float]
) -> Ciphertext:
    """Evaluate a Chebyshev expansion ``sum c_j T_j(x)`` homomorphically.

    Converts to the monomial basis (stable for the modest degrees used
    here) and dispatches to Paterson-Stockmeyer.  Inputs must live in
    [-1, 1] for the expansion to be meaningful.
    """
    degree = len(cheb_coeffs) - 1
    # Build monomial coefficients via the T_j recurrence.
    t_prev = np.zeros(degree + 1)
    t_prev[0] = 1.0                      # T_0 = 1
    mono = cheb_coeffs[0] * t_prev
    if degree >= 1:
        t_cur = np.zeros(degree + 1)
        t_cur[1] = 1.0                   # T_1 = x
        mono = mono + cheb_coeffs[1] * t_cur
        for j in range(2, degree + 1):
            t_next = np.zeros(degree + 1)
            t_next[1:] = 2.0 * t_cur[:-1]
            t_next -= t_prev
            mono = mono + cheb_coeffs[j] * t_next
            t_prev, t_cur = t_cur, t_next
    return paterson_stockmeyer(ctx, ct, list(mono))


def multiplication_depth(degree: int, method: str = "ps") -> int:
    """Levels consumed by an evaluation (cost-model helper)."""
    if degree <= 0:
        return 0
    if method == "horner":
        return degree
    if method == "ps":
        k = max(2, int(math.isqrt(degree)))
        num_blocks = -(-(degree + 1) // k)
        return int(math.ceil(math.log2(k))) + num_blocks
    raise ValueError(f"unknown method {method!r}")
