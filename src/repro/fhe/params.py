"""CKKS parameter sets.

A :class:`CKKSParams` instance carries everything both the functional FHE
library and the CROPHE scheduler need to know about a CKKS instantiation:
the ring degree ``N``, the maximum multiplicative level ``L``, the digit
decomposition parameters ``dnum``/``alpha``, and the RNS moduli.

Two kinds of parameter sets exist:

* *Concrete* sets (small ``N``, ~30-bit NTT-friendly primes) for which the
  functional library can actually encrypt/compute/decrypt.  Used by tests
  and examples.
* *Spec* sets matching the paper's Table III (``log2 N`` of 16-17, large
  ``L``).  These drive the scheduler and performance models, which only
  need shapes and counts, never concrete residue arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.resilience.errors import ConfigError


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def ntt_friendly_primes(n: int, bits: int, count: int, skip: int = 0) -> Tuple[int, ...]:
    """Return ``count`` primes ``p = 1 (mod 2n)`` near ``2**bits``.

    Such primes admit a primitive ``2n``-th root of unity, as required by
    the negacyclic NTT over ``Z_p[X]/(X^n + 1)``.  ``skip`` lets callers
    carve out disjoint prime sets (e.g. ciphertext moduli vs. the special
    modulus) from the same search sequence.
    """
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    step = 2 * n
    candidate = (1 << bits) + 1
    # Align to 1 mod 2n.
    candidate += (-candidate + 1) % step
    found: List[int] = []
    skipped = 0
    while len(found) < count:
        if is_prime(candidate):
            if skipped < skip:
                skipped += 1
            else:
                found.append(candidate)
        candidate += step
        if candidate >= (1 << (bits + 2)):
            raise RuntimeError(
                f"exhausted search for {count} NTT primes of {bits} bits (n={n})"
            )
    return tuple(found)


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Find a primitive ``order``-th root of unity modulo a prime."""
    if (modulus - 1) % order:
        raise ValueError(f"{order} does not divide {modulus}-1")
    # Factor `order` (a power of two times small factors in our usage).
    cofactor = (modulus - 1) // order
    for g in range(2, modulus):
        root = pow(g, cofactor, modulus)
        if pow(root, order // 2, modulus) != 1:
            return root
    raise RuntimeError("no primitive root found")


@dataclass(frozen=True)
class CKKSParams:
    """Static parameters of an RNS-CKKS instantiation.

    Attributes:
        log_n: log2 of the ring degree ``N``.
        max_level: maximum multiplicative level ``L`` (there are ``L + 1``
            ciphertext prime moduli ``q_0 .. q_L``).
        dnum: number of digits in the key-switching decomposition.
        alpha: limbs per digit; the special modulus has ``k = alpha``
            primes.  ``dnum * alpha >= L + 1`` must hold.
        word_bits: machine word length the accelerator uses for residues.
        scale_bits: log2 of the encoding scale Delta.
        boot_levels: levels consumed by bootstrapping (``L_boot``).
        moduli: concrete ciphertext primes ``q_0..q_L`` (empty for spec
            sets).
        special_moduli: concrete special primes ``p_0..p_{alpha-1}``.
        name: optional label (e.g. the baseline this set matches).
    """

    log_n: int
    max_level: int
    dnum: int
    alpha: int
    word_bits: int = 36
    scale_bits: int = 20
    boot_levels: int = 0
    moduli: Tuple[int, ...] = field(default=())
    special_moduli: Tuple[int, ...] = field(default=())
    name: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject inconsistent CKKS parameters at construction time.

        Raises:
            ConfigError: naming the offending field.
        """
        if self.log_n < 2 or self.log_n > 20:
            raise ConfigError(
                "log_n", self.log_n, "ring degree exponent out of [2, 20]"
            )
        if self.max_level < 0:
            raise ConfigError("max_level", self.max_level, "must be >= 0")
        if self.alpha < 1:
            raise ConfigError("alpha", self.alpha, "must be >= 1")
        if self.dnum < 1:
            raise ConfigError("dnum", self.dnum, "must be >= 1")
        if self.word_bits < 1:
            raise ConfigError("word_bits", self.word_bits, "must be >= 1")
        if self.scale_bits < 1:
            raise ConfigError("scale_bits", self.scale_bits, "must be >= 1")
        if self.boot_levels < 0 or self.boot_levels > self.max_level:
            raise ConfigError(
                "boot_levels", self.boot_levels,
                f"must lie in [0, max_level={self.max_level}]",
            )
        if self.dnum * self.alpha < self.max_level + 1:
            raise ConfigError(
                "dnum", self.dnum,
                f"dnum*alpha={self.dnum * self.alpha} cannot cover "
                f"L+1={self.max_level + 1} limbs",
            )
        if self.moduli and len(self.moduli) != self.max_level + 1:
            raise ConfigError(
                "moduli", len(self.moduli),
                f"need exactly L+1={self.max_level + 1} ciphertext moduli",
            )
        if self.moduli and len(self.special_moduli) != self.alpha:
            raise ConfigError(
                "special_moduli", len(self.special_moduli),
                f"need exactly alpha={self.alpha} special moduli",
            )

    @property
    def n(self) -> int:
        """Ring degree ``N``."""
        return 1 << self.log_n

    @property
    def slots(self) -> int:
        """Number of complex vector slots (``N / 2``)."""
        return self.n // 2

    @property
    def num_limbs(self) -> int:
        """Number of ciphertext limbs at the maximum level (``L + 1``)."""
        return self.max_level + 1

    @property
    def num_special_limbs(self) -> int:
        """Number of special-modulus limbs (``k = alpha``)."""
        return self.alpha

    @property
    def is_concrete(self) -> bool:
        """Whether concrete RNS moduli are attached (functional mode)."""
        return bool(self.moduli)

    def digits_at_level(self, level: int) -> int:
        """Digit count ``beta = ceil((level + 1) / alpha)`` at ``level``."""
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} out of [0, {self.max_level}]")
        return -((level + 1) // -self.alpha)

    def evk_limbs(self, level: int) -> int:
        """Limb count of each evk polynomial at ``level``: alpha + l + 1."""
        return self.alpha + level + 1

    def evk_elements(self, level: int) -> int:
        """Total residue elements in one evaluation key at ``level``.

        Shape: 2 polynomials x beta digits x (alpha + l + 1) limbs x N.
        """
        beta = self.digits_at_level(level)
        return 2 * beta * self.evk_limbs(level) * self.n

    def ciphertext_elements(self, level: int) -> int:
        """Residue elements in a (b, a) ciphertext at ``level``."""
        return 2 * (level + 1) * self.n

    def bytes_per_word(self) -> int:
        """Storage bytes per residue word (word_bits rounded up to bytes)."""
        return (self.word_bits + 7) // 8

    def with_level(self, level: int) -> "CKKSParams":
        """A copy truncated to ``level`` as the maximum level."""
        if level == self.max_level:
            return self
        return CKKSParams(
            log_n=self.log_n,
            max_level=level,
            dnum=self.dnum,
            alpha=self.alpha,
            word_bits=self.word_bits,
            scale_bits=self.scale_bits,
            boot_levels=min(self.boot_levels, level),
            moduli=self.moduli[: level + 1] if self.moduli else (),
            special_moduli=self.special_moduli,
            name=self.name,
        )


def make_concrete_params(
    log_n: int,
    max_level: int,
    alpha: int,
    scale_bits: Optional[int] = None,
    prime_bits: int = 28,
    name: str = "test",
) -> CKKSParams:
    """Build a concrete (functional) parameter set with real NTT primes.

    Prime residues stay below 2**30 so that numpy int64 products never
    overflow, which keeps all polynomial arithmetic vectorized.  The
    default scale equals the prime size so rescaling keeps the scale
    (and thus precision) roughly constant across levels.
    """
    if scale_bits is None:
        scale_bits = prime_bits
    if prime_bits > 29:
        raise ValueError("prime_bits must be <= 29 to avoid int64 overflow")
    num_q = max_level + 1
    n = 1 << log_n
    qs = ntt_friendly_primes(n, prime_bits, num_q)
    # Special primes: disjoint from ciphertext primes, slightly larger so
    # that P > product of any digit's q_i ratio stays favorable for noise.
    ps = ntt_friendly_primes(n, prime_bits + 1, alpha)
    dnum = -((max_level + 1) // -alpha)
    return CKKSParams(
        log_n=log_n,
        max_level=max_level,
        dnum=dnum,
        alpha=alpha,
        word_bits=prime_bits + 1,
        scale_bits=scale_bits,
        moduli=qs,
        special_moduli=ps,
        name=name,
    )


#: Paper Table III: parameter set used when comparing with each baseline.
PARAMETER_SETS: Dict[str, CKKSParams] = {
    "BTS": CKKSParams(
        log_n=17, max_level=39, boot_levels=19, dnum=2, alpha=20,
        word_bits=64, scale_bits=50, name="BTS",
    ),
    "ARK": CKKSParams(
        log_n=16, max_level=23, boot_levels=15, dnum=4, alpha=6,
        word_bits=64, scale_bits=50, name="ARK",
    ),
    "SHARP": CKKSParams(
        log_n=16, max_level=35, boot_levels=27, dnum=3, alpha=12,
        word_bits=36, scale_bits=30, name="SHARP",
    ),
    "CraterLake": CKKSParams(
        log_n=16, max_level=59, boot_levels=51, dnum=1, alpha=60,
        word_bits=28, scale_bits=24, name="CraterLake",
    ),
}


def parameter_set(name: str) -> CKKSParams:
    """Look up one of the paper's Table III parameter sets by name."""
    try:
        return PARAMETER_SETS[name]
    except KeyError:
        raise KeyError(
            f"unknown parameter set {name!r}; "
            f"choose from {sorted(PARAMETER_SETS)}"
        ) from None


def security_bits_estimate(params: CKKSParams) -> float:
    """Crude LWE security estimate (ratio-based rule of thumb).

    The paper states all Table III sets reach 128-bit security.  We scale
    from the standard homomorphic-encryption-security anchor point that
    ``N = 2**16`` supports ``log2(Q*P) ~ 1728`` bits at 128-bit security,
    with security roughly proportional to ``N / log2(Q*P)``.  This is a
    sanity check for relative parameter choices, not a cryptographic
    guarantee.
    """
    total_mod_bits = (params.max_level + 1 + params.alpha) * _modulus_bits(params)
    return 128.0 * (params.n / 65536.0) * (1728.0 / max(total_mod_bits, 1))


def _modulus_bits(params: CKKSParams) -> int:
    if params.moduli:
        return max(q.bit_length() for q in params.moduli)
    # Spec sets: moduli occupy roughly the machine word.
    return max(params.word_bits - 4, params.scale_bits)
