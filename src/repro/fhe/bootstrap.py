"""CKKS bootstrapping: ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff.

A ciphertext at level 0 decrypts to ``t(X) = m(X) + q0 * I(X)`` when its
limbs are reinterpreted over a larger basis (ModRaise).  Bootstrapping
homomorphically evaluates ``t mod q0`` to recover ``m`` at a higher
level:

* **CoeffToSlot** moves the *coefficients* ``t_i`` into the vector slots
  using two plaintext matrix multiplications (the canonical embedding is
  only R-linear, so the map needs both the ciphertext and its
  conjugate).  Both matmuls run through BSGS (Algorithm 1), which is why
  bootstrapping is dominated by HRot and why the paper's hybrid rotation
  matters.
* **EvalMod** approximates ``x -> x mod q0`` with the scaled complex
  exponential: evaluate ``exp(i * theta / 2^k)`` by a short Taylor
  series, square ``k`` times, and take the imaginary part, using
  ``sin(2*pi*t/q0)/(2*pi) ~= (t mod q0)/q0`` for ``t`` near multiples of
  ``q0``.  The coefficient packing is complex, so the real and imaginary
  branches are separated first and recombined after.
* **SlotToCoeff** is the inverse linear transform, moving the reduced
  values back into coefficients.

The implementation is fully functional on small concrete parameter sets
(it actually refreshes ciphertexts); the accelerator-scale *operator
graph* of bootstrapping used by the scheduler lives in
``repro.workloads.bootstrapping`` and mirrors this structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.fhe import ops
from repro.fhe.bsgs import pt_mat_vec_mult
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import CKKSContext
from repro.fhe.encoding import _slot_exponents
from repro.fhe.poly import RnsPoly
from repro.fhe.rns import centered


@dataclass
class BootstrapConfig:
    """Knobs of the EvalMod approximation.

    Attributes:
        taylor_degree: Taylor truncation degree for ``exp(i*theta)``.
        double_angles: number of squarings ``k``; the argument is divided
            by ``2**k`` first so the Taylor series converges fast.
        target_level: level of the refreshed ciphertext after all the
            internal rescales (None = whatever the budget leaves).
    """

    taylor_degree: int = 7
    double_angles: int = 7
    target_level: Optional[int] = None

    @property
    def evalmod_levels(self) -> int:
        """Levels EvalMod consumes (boost + Horner + squarings + Im)."""
        return 1 + self.taylor_degree + self.double_angles + 1

    @property
    def total_levels(self) -> int:
        """Levels the whole bootstrap consumes.

        One each for CoeffToSlot, the real/imag split, the recombine, and
        SlotToCoeff, on top of EvalMod.
        """
        return self.evalmod_levels + 4


def mod_raise(ctx: CKKSContext, ct: Ciphertext, target_level: int) -> Ciphertext:
    """Reinterpret a level-0 ciphertext over a larger basis.

    The centered residues mod ``q0`` are re-embedded into all moduli of
    the target basis; the result decrypts to ``m + q0 * I`` with a small
    integer polynomial ``I`` (``|I|`` bounded by half the secret key's
    Hamming weight plus one).
    """
    if ct.level != 0:
        raise ValueError("mod_raise expects a level-0 ciphertext")
    moduli = ctx.params.moduli[: target_level + 1]
    polys = []
    for p in ct.polys:
        coeffs = centered(p.to_coeff().data[0], ct.moduli[0])
        polys.append(
            RnsPoly.from_coefficients(list(coeffs), ct.n, moduli).to_ntt()
        )
    return Ciphertext(polys, ct.scale, target_level)


@lru_cache(maxsize=16)
def coeff_to_slot_matrices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Matrices (B, C) with ``w = B z + C conj(z)`` packing coefficients.

    ``w_j = t_j + i * t_{j + N/2}`` where ``z`` is the canonical embedding
    of the polynomial ``t`` (the decode of the ciphertext at scale 1).
    """
    m = n // 2
    exps = _slot_exponents(n)
    j_idx = np.arange(m).reshape(-1, 1)
    k_exp = exps.reshape(1, -1).astype(np.int64)
    zeta = np.exp(1j * np.pi / n)
    lo = zeta ** (np.mod(-(k_exp * j_idx), 2 * n))
    hi = zeta ** (np.mod(-(k_exp * (j_idx + m)), 2 * n))
    b = (lo + 1j * hi) / n
    lo_p = zeta ** (np.mod(k_exp * j_idx, 2 * n))
    hi_p = zeta ** (np.mod(k_exp * (j_idx + m), 2 * n))
    c = (lo_p + 1j * hi_p) / n
    return b, c


@lru_cache(maxsize=16)
def slot_to_coeff_matrices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Matrices (D, F) with ``z = D w + F conj(w)`` (inverse packing)."""
    m = n // 2
    exps = _slot_exponents(n)
    zeta = np.exp(1j * np.pi / n)
    j_idx = np.arange(m).reshape(1, -1)
    r_k = exps.reshape(-1, 1).astype(np.int64)
    low = zeta ** (np.mod(r_k * j_idx, 2 * n))
    high = zeta ** (np.mod(r_k * (j_idx + m), 2 * n))
    d = 0.5 * (low - 1j * high)
    f = 0.5 * (low + 1j * high)
    return d, f


def coeff_to_slot(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """Homomorphically move polynomial coefficients into the slots.

    Output slots hold ``(t_j + i * t_{j+N/2}) / scale`` — i.e. the packed
    coefficients divided by the ciphertext's nominal scale.
    """
    b, c = coeff_to_slot_matrices(ctx.params.n)
    ct_conj = ops.conjugate(ctx, ct)
    part_b = pt_mat_vec_mult(ctx, ct, b)
    part_c = pt_mat_vec_mult(ctx, ct_conj, c)
    return ops.add(part_b, part_c)


def slot_to_coeff(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """Homomorphically move slot values back into the coefficients."""
    d, f = slot_to_coeff_matrices(ctx.params.n)
    ct_conj = ops.conjugate(ctx, ct)
    part_d = pt_mat_vec_mult(ctx, ct, d)
    part_f = pt_mat_vec_mult(ctx, ct_conj, f)
    return ops.add(part_d, part_f)


def _reinterpret_scale(ct: Ciphertext, factor: float) -> Ciphertext:
    """Multiply the nominal scale (divides slot values); zero cost."""
    out = ct.copy()
    out.scale = ct.scale * factor
    return out


def _real_imag_split(
    ctx: CKKSContext, ct: Ciphertext
) -> Tuple[Ciphertext, Ciphertext]:
    """Split complex slots into real-part and imag-part ciphertexts."""
    conj = ops.conjugate(ctx, ct)
    re2 = ops.add(ct, conj)  # 2 * Re
    im2 = ops.sub(ct, conj)  # 2i * Im
    # Halve both through the same CMult+rescale pipeline so they end at
    # identical levels and scales.
    re = ops.rescale(ctx, ops.mul_scalar(ctx, re2, 0.5))
    im = ops.rescale(ctx, ops.mul_scalar(ctx, im2, -0.5j))
    return re, im


def eval_mod_real(
    ctx: CKKSContext,
    ct: Ciphertext,
    q0_over_scale: float,
    config: BootstrapConfig,
) -> Ciphertext:
    """EvalMod on a ciphertext with *real* slot values.

    The slots hold ``u = t / Delta0`` where ``t = m + q0 * I``; the output
    slots hold ``~ m / Delta0`` (with its own nominal scale).
    ``q0_over_scale = q0 / Delta0`` is the effective modulus in slot-value
    units.
    """
    k = config.double_angles
    # theta = 2*pi*u / (q0_over_scale * 2^k); encode the constant with a
    # boosted plaintext scale so the working scale lands near one prime.
    eps = 2.0 * math.pi / (q0_over_scale * (2.0 ** k))
    q_last = float(ct.moduli[-1])
    q_prev = float(ct.moduli[-2])
    boost_scale = q_last * q_prev / ct.scale
    theta = ops.rescale(
        ctx, ops.mul_scalar(ctx, ct, eps, pt_scale=boost_scale)
    )
    # Horner on the Taylor series of exp(i * theta).
    degree = config.taylor_degree
    coeffs = [1j ** d / math.factorial(d) for d in range(degree + 1)]
    acc = ops.rescale(ctx, ops.mul_scalar(ctx, theta, coeffs[degree]))
    for d in range(degree - 1, 0, -1):
        acc = ops.add_scalar(ctx, acc, coeffs[d])
        theta_down = ops.level_down(theta, acc.level)
        acc = ops.rescale(ctx, ops.multiply(ctx, acc, theta_down))
    acc = ops.add_scalar(ctx, acc, coeffs[0])
    # Square k times: exp(i*theta) -> exp(i * 2^k * theta).
    for _ in range(k):
        acc = ops.rescale(ctx, ops.square(ctx, acc))
    # sin = Im(exp) = (p - conj(p)) / 2i.
    conj = ops.conjugate(ctx, acc)
    diff = ops.sub(acc, conj)
    sine = ops.rescale(ctx, ops.mul_scalar(ctx, diff, -0.5j))
    # m/Delta0 ~= sin * q0_over_scale / (2*pi): free scale adjustment.
    return _reinterpret_scale(sine, 2.0 * math.pi / q0_over_scale)


def bootstrap(
    ctx: CKKSContext,
    ct: Ciphertext,
    config: Optional[BootstrapConfig] = None,
) -> Ciphertext:
    """Refresh a level-0 ciphertext to a usable higher level.

    Returns a ciphertext at a higher level whose decode matches the
    input's message.  The output's nominal scale differs from the input's
    (it reflects the internal EvalMod arithmetic); callers who need a
    specific scale can multiply by an encoded ``1.0`` and rescale.
    """
    config = config or BootstrapConfig()
    if ct.level != 0:
        raise ValueError("bootstrap expects an exhausted (level-0) input")
    q0 = ctx.params.moduli[0]
    top = ctx.params.max_level
    if top < config.total_levels:
        raise ValueError(
            f"need >= {config.total_levels} levels to bootstrap, have {top}"
        )
    raised = mod_raise(ctx, ct, top)
    packed = coeff_to_slot(ctx, raised)
    re, im = _real_imag_split(ctx, packed)
    m_re = eval_mod_real(ctx, re, q0 / re.scale, config)
    m_im = eval_mod_real(ctx, im, q0 / im.scale, config)
    # Recombine: w = re + i * im.
    m_im_i = ops.rescale(ctx, ops.mul_scalar(ctx, m_im, 1j))
    m_re_d = ops.rescale(ctx, ops.mul_scalar(ctx, m_re, 1.0))
    m_re_d.scale = m_im_i.scale
    combined = ops.add(m_re_d, m_im_i)
    refreshed = slot_to_coeff(ctx, combined)
    if config.target_level is not None:
        refreshed = ops.level_down(refreshed, config.target_level)
    return refreshed
