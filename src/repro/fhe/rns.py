"""Residue number system (RNS) arithmetic kernels.

All residues are stored as numpy ``int64`` arrays with moduli kept below
2**30, so every intermediate product fits in an int64 without overflow.
This file provides the vectorized modular primitives plus the two RNS
algorithms that CKKS key-switching is built from:

* :class:`BaseConverter` — the approximate base conversion (``BConv``)
  that maps residues from one RNS basis to another.  In hardware this is
  the small-constant-matrix multiply discussed in Section III-A of the
  paper.
* CRT reconstruction helpers used by tests to check RNS round trips.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

INT = np.int64


def as_residue_array(values: Iterable[int], modulus: int) -> np.ndarray:
    """Coerce arbitrary integers into a canonical residue array."""
    arr = np.asarray(list(values), dtype=object)
    return np.array([int(v) % modulus for v in arr.ravel()], dtype=INT).reshape(
        np.shape(arr)
    )


def mod_add(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise modular addition."""
    return np.mod(a + b, q)


def mod_sub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise modular subtraction."""
    return np.mod(a - b, q)


def mod_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise modular multiplication (inputs must be < 2**31)."""
    return np.mod(a * b, q)


def mod_neg(a: np.ndarray, q: int) -> np.ndarray:
    """Element-wise modular negation."""
    return np.mod(-a, q)


def mod_pow(base: int, exponent: int, q: int) -> int:
    """Scalar modular exponentiation."""
    return pow(int(base), int(exponent), int(q))


def mod_inverse(a: int, q: int) -> int:
    """Modular inverse of a scalar (``a`` must be coprime to ``q``)."""
    return pow(int(a) % q, -1, q)


def centered(residues: np.ndarray, q: int) -> np.ndarray:
    """Map residues in [0, q) to the centered representation (-q/2, q/2]."""
    half = q // 2
    out = residues.astype(np.int64).copy()
    out[out > half] -= q
    return out


def crt_reconstruct(limbs: Sequence[np.ndarray], moduli: Sequence[int]) -> List[int]:
    """Reconstruct big integers from their RNS limbs (exact CRT).

    Returns the *centered* representatives in ``(-Q/2, Q/2]`` as Python
    ints, which is what signed polynomial coefficients require.
    """
    if len(limbs) != len(moduli):
        raise ValueError("limb/modulus count mismatch")
    big_q = 1
    for q in moduli:
        big_q *= int(q)
    n = len(limbs[0])
    garner: List[int] = []
    for i, q in enumerate(moduli):
        q_hat = big_q // int(q)
        garner.append(q_hat * mod_inverse(q_hat, int(q)))
    out = []
    for j in range(n):
        acc = 0
        for i in range(len(moduli)):
            acc += int(limbs[i][j]) * garner[i]
        acc %= big_q
        if acc > big_q // 2:
            acc -= big_q
        out.append(acc)
    return out


def to_rns(values: Sequence[int], moduli: Sequence[int]) -> List[np.ndarray]:
    """Decompose (possibly negative) big integers into RNS limbs."""
    return [
        np.array([int(v) % int(q) for v in values], dtype=INT) for q in moduli
    ]


class BaseConverter:
    """Approximate RNS base conversion (the ``BConv`` operator).

    Converts residues from a source basis ``{q_i}`` to a target basis
    ``{p_j}`` using the standard approximate technique of
    Bajard et al. / Cheon et al.:

        x mod p_j  ~=  sum_i [ (x_i * qhat_inv_i) mod q_i ] * qhat_i  mod p_j

    The approximation may add a small multiple ``e * Q`` (``0 <= e < len(q)``)
    to the result; CKKS tolerates this as additional noise.  In hardware
    terms this is a matrix multiply of the ``len(q) x N`` limb matrix with
    a constant ``len(p) x len(q)`` matrix, exactly the shape the paper's
    Section III-A analyses.
    """

    def __init__(self, source: Sequence[int], target: Sequence[int]):
        if not source or not target:
            raise ValueError("source and target bases must be non-empty")
        if len(set(source) & set(target)):
            raise ValueError("source and target bases must be disjoint")
        self.source: Tuple[int, ...] = tuple(int(q) for q in source)
        self.target: Tuple[int, ...] = tuple(int(p) for p in target)
        big_q = 1
        for q in self.source:
            big_q *= q
        self.source_product = big_q
        # qhat_inv_i = (Q / q_i)^{-1} mod q_i  — applied element-wise per limb.
        self._qhat_inv = np.array(
            [mod_inverse(big_q // q, q) for q in self.source], dtype=INT
        )
        # conversion_matrix[j][i] = (Q / q_i) mod p_j  — the BConv constant.
        self.matrix = np.array(
            [[(big_q // q) % p for q in self.source] for p in self.target],
            dtype=INT,
        )
        # Q mod p_j, used by the optional correction step.
        self._q_mod_p = np.array([big_q % p for p in self.target], dtype=INT)

    @property
    def matrix_elements(self) -> int:
        """Number of constants in the BConv matrix (cost-model input)."""
        return self.matrix.size

    def convert(self, limbs: np.ndarray) -> np.ndarray:
        """Convert a ``(len(source), n)`` limb matrix to the target basis.

        Returns a ``(len(target), n)`` limb matrix.  Vectorized over slots;
        the inner reduction over source limbs is done in python-int space
        per target modulus to avoid overflow for larger bases.
        """
        limbs = np.asarray(limbs, dtype=INT)
        if limbs.ndim != 2 or limbs.shape[0] != len(self.source):
            raise ValueError(
                f"expected ({len(self.source)}, n) limb matrix, got {limbs.shape}"
            )
        # y_i = x_i * qhat_inv_i mod q_i
        y = np.empty_like(limbs)
        for i, q in enumerate(self.source):
            y[i] = mod_mul(limbs[i], np.int64(self._qhat_inv[i]), q)
        out = np.empty((len(self.target), limbs.shape[1]), dtype=INT)
        for j, p in enumerate(self.target):
            # Accumulate sum_i y_i * (Q/q_i mod p_j) mod p_j with periodic
            # reduction so the int64 accumulator never overflows.
            acc = np.zeros(limbs.shape[1], dtype=INT)
            for i in range(len(self.source)):
                acc = np.mod(acc + y[i] * self.matrix[j, i], p)
            out[j] = acc
        return out

    def convert_exact_small(self, limbs: np.ndarray) -> np.ndarray:
        """Exact conversion via CRT (slow; used as a test oracle)."""
        values = crt_reconstruct(list(limbs), list(self.source))
        target_limbs = to_rns(values, list(self.target))
        return np.stack(target_limbs)


def flooring_scale(
    limbs: np.ndarray, moduli: Sequence[int], last: int
) -> np.ndarray:
    """Divide by the dropped modulus during rescale: (x - x_last) / q_last.

    Given limbs over ``q_0..q_l``, returns limbs over ``q_0..q_{l-1}`` of
    ``round(x / q_l)`` (up to rounding in the RNS-approximate sense).  This
    is the core of ``HRescale`` and of ``ModDown``'s final step.
    """
    moduli = [int(q) for q in moduli]
    if limbs.shape[0] != len(moduli):
        raise ValueError("limb count does not match basis size")
    if moduli[-1] != int(last):
        raise ValueError("`last` must be the final modulus of the basis")
    x_last = limbs[-1]
    out = np.empty((len(moduli) - 1, limbs.shape[1]), dtype=INT)
    for i, q in enumerate(moduli[:-1]):
        inv = mod_inverse(last, q)
        out[i] = mod_mul(mod_sub(limbs[i], x_last, q), np.int64(inv), q)
    return out
