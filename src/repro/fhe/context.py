"""The CKKS context: key generation, encryption, and decryption.

:class:`CKKSContext` binds a concrete :class:`~repro.fhe.params.CKKSParams`
to generated key material and exposes encode/encrypt/decrypt/decode along
with lazily generated key-switching keys (relinearization, rotation,
conjugation).  Key-switching keys are generated *per level* so that the
digit decomposition always aligns with the current basis — see
``keyswitch.py`` for the pipeline that consumes them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fhe import encoding
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.keys import EvaluationKey, PublicKey, SecretKey
from repro.fhe.params import CKKSParams
from repro.fhe.poly import Domain, RnsPoly
from repro.fhe.rns import INT, mod_inverse


class CKKSContext:
    """Holds parameters, keys, and randomness for a CKKS instantiation.

    Args:
        params: a *concrete* parameter set (``params.is_concrete``).
        seed: RNG seed; all randomness (keys, encryption noise) derives
            from it, making tests reproducible.
        error_std: standard deviation of the discrete Gaussian noise.
        hamming_weight: if set, sample a *sparse* ternary secret with
            exactly this many nonzero coefficients.  Sparse keys bound
            the ModRaise overflow polynomial ``I`` and are what the
            paper's sparse-packed bootstrapping [14] relies on.
    """

    def __init__(
        self,
        params: CKKSParams,
        seed: int = 2026,
        error_std: float = 3.2,
        hamming_weight: Optional[int] = None,
    ):
        self.hamming_weight = hamming_weight
        if not params.is_concrete:
            raise ValueError(
                "CKKSContext requires concrete moduli; use "
                "make_concrete_params() (spec sets only drive the scheduler)"
            )
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.error_std = error_std
        self.full_basis: Tuple[int, ...] = tuple(params.moduli) + tuple(
            params.special_moduli
        )
        self.secret_key = self._generate_secret_key()
        self.public_key = self._generate_public_key()
        self._relin_keys: Dict[int, EvaluationKey] = {}
        self._rotation_keys: Dict[Tuple[int, int], EvaluationKey] = {}
        self._conj_keys: Dict[int, EvaluationKey] = {}

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    def _sample_error_coeffs(self) -> np.ndarray:
        e = np.round(self.rng.normal(0.0, self.error_std, size=self.params.n))
        return e.astype(np.int64)

    def _sample_ternary_coeffs(self) -> np.ndarray:
        return self.rng.integers(-1, 2, size=self.params.n, dtype=np.int64)

    def _error_poly(self, moduli: Sequence[int]) -> RnsPoly:
        return RnsPoly.from_coefficients(
            list(self._sample_error_coeffs()), self.params.n, moduli
        ).to_ntt()

    def _uniform_poly(self, moduli: Sequence[int]) -> RnsPoly:
        return RnsPoly.random_uniform(self.params.n, moduli, self.rng, Domain.NTT)

    # ------------------------------------------------------------------
    # Key generation
    # ------------------------------------------------------------------

    def _sample_secret_coeffs(self) -> np.ndarray:
        if self.hamming_weight is None:
            return self._sample_ternary_coeffs()
        h = self.hamming_weight
        if not 0 < h <= self.params.n:
            raise ValueError(f"hamming_weight {h} out of (0, {self.params.n}]")
        coeffs = np.zeros(self.params.n, dtype=np.int64)
        support = self.rng.choice(self.params.n, size=h, replace=False)
        coeffs[support] = self.rng.choice([-1, 1], size=h)
        return coeffs

    def _generate_secret_key(self) -> SecretKey:
        coeffs = self._sample_secret_coeffs()
        poly = RnsPoly.from_coefficients(
            list(coeffs), self.params.n, self.full_basis
        ).to_ntt()
        return SecretKey(poly=poly)

    def _generate_public_key(self) -> PublicKey:
        q_basis = tuple(self.params.moduli)
        s = self.secret_key.poly.sub_basis(q_basis)
        a = self._uniform_poly(q_basis)
        e = self._error_poly(q_basis)
        b = -(a * s) + e
        return PublicKey(b=b, a=a)

    def _digit_bounds(self, level: int) -> List[Tuple[int, int]]:
        """Limb index ranges [start, end) of each digit at ``level``."""
        alpha = self.params.alpha
        bounds = []
        start = 0
        while start <= level:
            end = min(start + alpha, level + 1)
            bounds.append((start, end))
            start = end
        return bounds

    def _generate_keyswitch_key(
        self, s_prime: RnsPoly, level: int, kind: str
    ) -> EvaluationKey:
        """Generate an evk switching ciphertexts under ``s'`` to ``s``.

        For each digit ``j`` with modulus product ``Q_j``:
        ``b_j = -a_j*s + e_j + P * (Q/Q_j) * [(Q/Q_j)^{-1}]_{Q_j} * s'``
        over the basis ``P * Q_level``.
        """
        q_moduli = list(self.params.moduli[: level + 1])
        p_moduli = list(self.params.special_moduli)
        ext_basis = tuple(q_moduli) + tuple(p_moduli)
        big_q = 1
        for q in q_moduli:
            big_q *= q
        big_p = 1
        for p in p_moduli:
            big_p *= p
        s = self.secret_key.poly.sub_basis(ext_basis)
        sp = s_prime.sub_basis(ext_basis)
        digits = []
        for (start, end) in self._digit_bounds(level):
            digit_q = 1
            for q in q_moduli[start:end]:
                digit_q *= q
            q_hat = big_q // digit_q
            factor = big_p * q_hat * mod_inverse(q_hat % digit_q, digit_q)
            factors = [factor % q for q in ext_basis]
            a_j = self._uniform_poly(ext_basis)
            e_j = self._error_poly(ext_basis)
            b_j = -(a_j * s) + e_j + sp.limb_scalar_mul(factors)
            digits.append((b_j, a_j))
        return EvaluationKey(digits=digits, level=level, kind=kind)

    def relin_key(self, level: int) -> EvaluationKey:
        """Key switching ``s**2 -> s`` at ``level`` (cached)."""
        key = self._relin_keys.get(level)
        if key is None:
            s = self.secret_key.poly
            key = self._generate_keyswitch_key(s * s, level, "relin")
            self._relin_keys[level] = key
        return key

    def rotation_key(self, r: int, level: int) -> EvaluationKey:
        """Key switching ``sigma_{5^r}(s) -> s`` at ``level`` (cached)."""
        r = r % self.params.slots
        cache_key = (r, level)
        key = self._rotation_keys.get(cache_key)
        if key is None:
            t = encoding.rotation_galois_element(self.params.n, r)
            s_rot = self.secret_key.poly.automorphism(t)
            key = self._generate_keyswitch_key(s_rot, level, f"rot:{r}")
            self._rotation_keys[cache_key] = key
        return key

    def conjugation_key(self, level: int) -> EvaluationKey:
        """Key switching ``sigma_{-1}(s) -> s`` at ``level`` (cached)."""
        key = self._conj_keys.get(level)
        if key is None:
            t = encoding.conjugation_galois_element(self.params.n)
            s_conj = self.secret_key.poly.automorphism(t)
            key = self._generate_keyswitch_key(s_conj, level, "conj")
            self._conj_keys[level] = key
        return key

    # ------------------------------------------------------------------
    # Encode / encrypt / decrypt / decode
    # ------------------------------------------------------------------

    @property
    def default_scale(self) -> float:
        return float(2 ** self.params.scale_bits)

    def encode(
        self,
        values: Sequence[complex],
        level: Optional[int] = None,
        scale: Optional[float] = None,
    ) -> Plaintext:
        """Encode a vector into a plaintext at the given level/scale."""
        level = self.params.max_level if level is None else level
        scale = self.default_scale if scale is None else scale
        coeffs = encoding.encode(values, self.params.n, scale)
        moduli = self.params.moduli[: level + 1]
        poly = RnsPoly.from_coefficients(
            list(coeffs), self.params.n, moduli
        ).to_ntt()
        return Plaintext(poly=poly, scale=scale, level=level)

    def decode(self, plaintext: Plaintext, num_slots: int = 0) -> np.ndarray:
        """Decode a plaintext back to its complex slot vector."""
        coeffs = plaintext.poly.to_coeff().to_integers()
        return encoding.decode(
            np.array(coeffs, dtype=np.float64),
            self.params.n,
            plaintext.scale,
            num_slots,
        )

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Public-key encryption: ``ct = v*(pk.b, pk.a) + (m + e0, e1)``."""
        moduli = tuple(self.params.moduli[: plaintext.level + 1])
        v = RnsPoly.from_coefficients(
            list(self._sample_ternary_coeffs()), self.params.n, moduli
        ).to_ntt()
        pk_b = self.public_key.b.sub_basis(moduli)
        pk_a = self.public_key.a.sub_basis(moduli)
        e0 = self._error_poly(moduli)
        e1 = self._error_poly(moduli)
        b = pk_b * v + e0 + plaintext.poly
        a = pk_a * v + e1
        return Ciphertext([b, a], plaintext.scale, plaintext.level)

    def decrypt(self, ct: Ciphertext) -> Plaintext:
        """Decrypt ``sum_i ct_i * s^i`` (supports size-3 pre-relin cts)."""
        s = self.secret_key.poly.sub_basis(ct.moduli)
        acc = ct.polys[0].copy()
        s_power = s
        for poly in ct.polys[1:]:
            acc = acc + poly * s_power
            s_power = s_power * s
        return Plaintext(poly=acc, scale=ct.scale, level=ct.level)

    def decrypt_decode(self, ct: Ciphertext, num_slots: int = 0) -> np.ndarray:
        """Decrypt then decode in one step (testing convenience)."""
        return self.decode(self.decrypt(ct), num_slots)
