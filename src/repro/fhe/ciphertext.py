"""Ciphertext and plaintext containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.fhe.poly import Domain, RnsPoly


@dataclass
class Plaintext:
    """An encoded (but not encrypted) polynomial with its scale/level."""

    poly: RnsPoly
    scale: float
    level: int

    @property
    def n(self) -> int:
        return self.poly.n


@dataclass
class Ciphertext:
    """A CKKS ciphertext: a list of polynomials (usually ``(b, a)``).

    A freshly encrypted or key-switched ciphertext has two polynomials;
    the tensor product inside HMult transiently produces three
    (``d0, d1, d2``) until relinearization.

    Attributes:
        polys: the component polynomials, all over the same basis.
        scale: current CKKS scale Delta'.
        level: current multiplicative level (number of moduli minus one).
    """

    polys: List[RnsPoly]
    scale: float
    level: int

    def __post_init__(self) -> None:
        if not self.polys:
            raise ValueError("ciphertext needs at least one polynomial")
        basis = self.polys[0].moduli
        for p in self.polys:
            if p.moduli != basis:
                raise ValueError("ciphertext polynomials must share a basis")
        if len(basis) != self.level + 1:
            raise ValueError(
                f"level {self.level} implies {self.level + 1} limbs, "
                f"basis has {len(basis)}"
            )

    @property
    def n(self) -> int:
        return self.polys[0].n

    @property
    def size(self) -> int:
        """Number of component polynomials (2 normally, 3 pre-relin)."""
        return len(self.polys)

    @property
    def b(self) -> RnsPoly:
        return self.polys[0]

    @property
    def a(self) -> RnsPoly:
        if len(self.polys) < 2:
            raise ValueError("ciphertext has no `a` component")
        return self.polys[1]

    @property
    def moduli(self):
        return self.polys[0].moduli

    def copy(self) -> "Ciphertext":
        """Deep-copy all component polynomials."""
        return Ciphertext([p.copy() for p in self.polys], self.scale, self.level)

    def in_domain(self, domain: Domain) -> "Ciphertext":
        """Convert all component polynomials to the given domain."""
        if domain is Domain.NTT:
            return Ciphertext([p.to_ntt() for p in self.polys], self.scale, self.level)
        return Ciphertext([p.to_coeff() for p in self.polys], self.scale, self.level)
