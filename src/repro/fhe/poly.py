"""RNS polynomials: the ``(limbs x N)`` matrices the paper schedules.

An :class:`RnsPoly` is one polynomial of ``Z_Q[X]/(X^N + 1)`` stored as an
``(l+1) x N`` int64 limb matrix under an explicit RNS basis, tagged with
its current representation (:class:`Domain`): coefficient or NTT
(evaluation).  All FHE operators in this package are built from the small
set of primitives here — element-wise modular arithmetic, NTT/iNTT,
Galois automorphism, and base conversion — mirroring the operator
taxonomy of the CROPHE IR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fhe import rns
from repro.fhe.ntt import galois_coeff, galois_eval_permutation, get_ntt_context
from repro.fhe.rns import INT


class Domain(enum.Enum):
    """Representation of a polynomial's limb data."""

    COEFF = "coeff"
    NTT = "ntt"


@dataclass
class RnsPoly:
    """A polynomial in RNS form.

    Attributes:
        data: ``(num_limbs, n)`` int64 array of residues.
        moduli: the RNS basis, one modulus per limb row.
        domain: coefficient or NTT representation.
    """

    data: np.ndarray
    moduli: Tuple[int, ...]
    domain: Domain = Domain.NTT

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=INT)
        self.moduli = tuple(int(q) for q in self.moduli)
        if self.data.ndim != 2:
            raise ValueError(f"limb matrix must be 2-D, got {self.data.shape}")
        if self.data.shape[0] != len(self.moduli):
            raise ValueError(
                f"{self.data.shape[0]} limb rows vs {len(self.moduli)} moduli"
            )
        n = self.data.shape[1]
        if n & (n - 1):
            raise ValueError("polynomial length must be a power of two")

    # -- construction ---------------------------------------------------

    @classmethod
    def zeros(cls, n: int, moduli: Sequence[int], domain: Domain = Domain.NTT) -> "RnsPoly":
        return cls(np.zeros((len(moduli), n), dtype=INT), tuple(moduli), domain)

    @classmethod
    def from_coefficients(
        cls, coeffs: Sequence[int], n: int, moduli: Sequence[int]
    ) -> "RnsPoly":
        """Build from signed integer coefficients (len <= n)."""
        padded = list(coeffs) + [0] * (n - len(coeffs))
        limbs = rns.to_rns(padded, list(moduli))
        return cls(np.stack(limbs), tuple(moduli), Domain.COEFF)

    @classmethod
    def random_uniform(
        cls,
        n: int,
        moduli: Sequence[int],
        rng: np.random.Generator,
        domain: Domain = Domain.NTT,
    ) -> "RnsPoly":
        """Uniform random polynomial (each limb independently uniform).

        Limb-wise uniform sampling is the standard RNS shortcut for a
        uniform element of ``Z_Q`` (exact by CRT).
        """
        data = np.stack(
            [rng.integers(0, q, size=n, dtype=INT) for q in moduli]
        )
        return cls(data, tuple(moduli), domain)

    # -- basic properties -----------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_limbs(self) -> int:
        return self.data.shape[0]

    def copy(self) -> "RnsPoly":
        """Deep-copy the limb matrix."""
        return RnsPoly(self.data.copy(), self.moduli, self.domain)

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli:
            raise ValueError("RNS bases differ")
        if self.domain != other.domain:
            raise ValueError(
                f"domain mismatch: {self.domain.value} vs {other.domain.value}"
            )

    # -- element-wise arithmetic ----------------------------------------

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_add(self.data[i], other.data[i], q)
        return RnsPoly(out, self.moduli, self.domain)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_sub(self.data[i], other.data[i], q)
        return RnsPoly(out, self.moduli, self.domain)

    def __neg__(self) -> "RnsPoly":
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_neg(self.data[i], q)
        return RnsPoly(out, self.moduli, self.domain)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Element-wise product; requires NTT domain (Hadamard = poly mul)."""
        self._check_compatible(other)
        if self.domain is not Domain.NTT:
            raise ValueError("polynomial products require the NTT domain")
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_mul(self.data[i], other.data[i], q)
        return RnsPoly(out, self.moduli, self.domain)

    def scalar_mul(self, scalar: int) -> "RnsPoly":
        """Multiply every coefficient/evaluation by an integer scalar."""
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_mul(self.data[i], np.int64(scalar % q), q)
        return RnsPoly(out, self.moduli, self.domain)

    def limb_scalar_mul(self, scalars: Sequence[int]) -> "RnsPoly":
        """Multiply each limb by its own scalar (e.g. CRT factors)."""
        if len(scalars) != self.num_limbs:
            raise ValueError("one scalar per limb required")
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = rns.mod_mul(self.data[i], np.int64(int(scalars[i]) % q), q)
        return RnsPoly(out, self.moduli, self.domain)

    # -- representation changes -------------------------------------------

    def to_ntt(self) -> "RnsPoly":
        """Forward NTT on every limb (no-op if already in NTT domain)."""
        if self.domain is Domain.NTT:
            return self.copy()
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_ntt_context(self.n, q).forward(self.data[i])
        return RnsPoly(out, self.moduli, Domain.NTT)

    def to_coeff(self) -> "RnsPoly":
        """Inverse NTT on every limb (no-op if already in coeff domain)."""
        if self.domain is Domain.COEFF:
            return self.copy()
        out = np.empty_like(self.data)
        for i, q in enumerate(self.moduli):
            out[i] = get_ntt_context(self.n, q).inverse(self.data[i])
        return RnsPoly(out, self.moduli, Domain.COEFF)

    def automorphism(self, t: int) -> "RnsPoly":
        """Apply the Galois map ``a(X) -> a(X^t)`` in the current domain."""
        out = np.empty_like(self.data)
        if self.domain is Domain.NTT:
            perm = galois_eval_permutation(self.n, t)
            for i in range(self.num_limbs):
                out[i] = self.data[i][perm]
        else:
            for i, q in enumerate(self.moduli):
                out[i] = galois_coeff(self.data[i], t, q)
        return RnsPoly(out, self.moduli, self.domain)

    # -- basis manipulation -----------------------------------------------

    def drop_last_limb(self) -> "RnsPoly":
        """Remove the last RNS limb (basis shrinks by one modulus)."""
        if self.num_limbs <= 1:
            raise ValueError("cannot drop the only limb")
        return RnsPoly(self.data[:-1].copy(), self.moduli[:-1], self.domain)

    def extend(self, other: "RnsPoly") -> "RnsPoly":
        """Concatenate limb matrices of two disjoint bases."""
        if self.domain != other.domain:
            raise ValueError("domain mismatch in basis extension")
        if set(self.moduli) & set(other.moduli):
            raise ValueError("bases overlap")
        return RnsPoly(
            np.concatenate([self.data, other.data]),
            self.moduli + other.moduli,
            self.domain,
        )

    def sub_basis(self, moduli: Sequence[int]) -> "RnsPoly":
        """Project onto a subset of the current basis (by modulus value)."""
        moduli = tuple(int(q) for q in moduli)
        index = {q: i for i, q in enumerate(self.moduli)}
        rows = [index[q] for q in moduli]
        return RnsPoly(self.data[rows].copy(), moduli, self.domain)

    # -- reconstruction (tests / decode) ----------------------------------

    def to_integers(self) -> list:
        """CRT-reconstruct centered big-integer coefficients (coeff domain)."""
        if self.domain is not Domain.COEFF:
            raise ValueError("reconstruction requires the coefficient domain")
        return rns.crt_reconstruct(list(self.data), list(self.moduli))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        return (
            self.moduli == other.moduli
            and self.domain == other.domain
            and np.array_equal(self.data, other.data)
        )
