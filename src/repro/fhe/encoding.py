"""CKKS encoding and decoding via the canonical embedding.

A length-``N/2`` complex vector ``z`` is embedded into a real polynomial
``p`` such that ``p(zeta**(5**j)) ~= z_j`` where ``zeta = exp(i*pi/N)`` is
a primitive ``2N``-th complex root of unity.  The evaluation points are
indexed by powers of 5 so that the Galois automorphism ``X -> X**(5**r)``
realizes a cyclic rotation of the slots — the algebraic fact behind HRot.

The transforms are computed with explicit (vectorized) Vandermonde sums,
which is O(N * slots) — perfectly adequate for the concrete test
parameters (``N <= 2**12``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np


@lru_cache(maxsize=32)
def _slot_exponents(n: int) -> np.ndarray:
    """Exponents ``r_j = 5**j mod 2N`` selecting one point per conjugate pair."""
    m = n // 2
    exps = np.empty(m, dtype=np.int64)
    acc = 1
    for j in range(m):
        exps[j] = acc
        acc = acc * 5 % (2 * n)
    return exps


@lru_cache(maxsize=32)
def _embedding_matrix(n: int) -> np.ndarray:
    """``(slots, N)`` complex matrix ``E[j, i] = zeta**(i * r_j)``."""
    exps = _slot_exponents(n)
    i_idx = np.arange(n).reshape(1, -1)
    angle = np.pi / n * np.mod(exps.reshape(-1, 1) * i_idx, 2 * n)
    return np.exp(1j * angle)


def encode(values: Sequence[complex], n: int, scale: float) -> np.ndarray:
    """Encode a complex vector into integer polynomial coefficients.

    Args:
        values: up to ``N/2`` complex (or real) values; shorter vectors are
            zero-padded.
        n: ring degree.
        scale: the CKKS scale Delta; precision of the fixed-point encoding.

    Returns:
        Length-``N`` array of Python-int-safe signed coefficients.
    """
    m = n // 2
    z = np.zeros(m, dtype=np.complex128)
    vals = np.asarray(values, dtype=np.complex128)
    if len(vals) > m:
        raise ValueError(f"at most {m} slots available, got {len(vals)}")
    z[: len(vals)] = vals
    emb = _embedding_matrix(n)
    # c_i = (2/N) * Re( sum_j z_j * conj(E[j, i]) ), then scaled and rounded.
    coeffs = (2.0 / n) * np.real(np.conj(emb).T @ z)
    return np.round(coeffs * scale).astype(np.int64)


def decode(coeffs: Sequence[int], n: int, scale: float, num_slots: int = 0) -> np.ndarray:
    """Decode integer polynomial coefficients back to a complex vector."""
    m = n // 2
    c = np.asarray(coeffs, dtype=np.float64)
    if c.shape != (n,):
        raise ValueError(f"expected {n} coefficients, got {c.shape}")
    emb = _embedding_matrix(n)
    z = (emb @ c) / scale
    if num_slots:
        return z[:num_slots]
    return z


def rotation_galois_element(n: int, r: int) -> int:
    """Galois element ``5**r mod 2N`` implementing a rotation by ``r`` slots."""
    m = n // 2
    return pow(5, r % m, 2 * n)


def conjugation_galois_element(n: int) -> int:
    """Galois element ``2N - 1`` implementing complex conjugation."""
    return 2 * n - 1
