"""Baby-step giant-step plaintext matrix-vector multiplication.

Implements Algorithm 1 of the paper: for an ``n x n`` plaintext matrix
acting on the slot vector of a ciphertext, with ``n = n1 * n2``, the
rotation count drops from ``O(n)`` to ``O(n1 + n2)``:

* ``n1 - 1`` *baby-step* rotations of the input ciphertext, produced by
  any of the three rotation strategies (Min-KS / Hoisting / Hybrid);
* ``n2 - 1`` *giant-step* rotations of partial sums by ``n1 * j``.

Diagonal ``k`` of the matrix is ``diag_k(M)[i] = M[i][(i + k) mod n]``
(the Halevi-Shoup diagonal order), and the plaintext diagonals feeding
baby step ``i`` of giant step ``j`` are pre-rotated by ``-n1*j`` slots.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.fhe import ops
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import CKKSContext
from repro.resilience.errors import InvariantViolation
from repro.fhe.rotation import (
    RotationCounts,
    hoisted_rotations,
    hybrid_rotations,
    min_ks_rotations,
)

RotationStrategy = Callable[
    [CKKSContext, Ciphertext, int], Tuple[List[Ciphertext], RotationCounts]
]


def matrix_diagonal(matrix: np.ndarray, k: int) -> np.ndarray:
    """Generalized diagonal ``diag_k(M)[i] = M[i][(i + k) mod n]``."""
    n = matrix.shape[0]
    rows = np.arange(n)
    return matrix[rows, (rows + k) % n]


def split_bsgs(n: int) -> Tuple[int, int]:
    """Default BSGS split ``n = n1 * n2`` with ``n1 ~ sqrt(n)``."""
    n1 = 1 << (max(n.bit_length() - 1, 0) // 2)
    while n % n1:
        n1 //= 2
    return n1, n // n1


def pt_mat_vec_mult(
    ctx: CKKSContext,
    ct: Ciphertext,
    matrix: np.ndarray,
    n1: Optional[int] = None,
    rotation_strategy: str = "hoisting",
    r_hyb: int = 4,
) -> Ciphertext:
    """Homomorphically compute ``M @ slots(ct)`` via BSGS (Algorithm 1).

    Args:
        ctx: the CKKS context.
        ct: input ciphertext whose slot vector has length ``n``.
        matrix: ``(n, n)`` real or complex matrix; ``n`` must equal the
            slot count so the packing is full.
        n1: baby-step count (defaults to ``~sqrt(n)``); must divide ``n``.
        rotation_strategy: ``"min-ks"``, ``"hoisting"``, or ``"hybrid"``.
        r_hyb: the hybrid coarse-step distance (ignored otherwise).

    Returns:
        Ciphertext encrypting ``M @ v``, rescaled once (one level down).
    """
    n = ctx.params.slots
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be ({n}, {n}), got {matrix.shape}")
    if n1 is None:
        n1, n2 = split_bsgs(n)
    else:
        if n % n1:
            raise ValueError(f"n1={n1} must divide n={n}")
        n2 = n // n1

    if rotation_strategy == "min-ks":
        baby, _ = min_ks_rotations(ctx, ct, n1)
    elif rotation_strategy == "hoisting":
        baby, _ = hoisted_rotations(ctx, ct, n1)
    elif rotation_strategy == "hybrid":
        baby, _ = hybrid_rotations(ctx, ct, n1, r_hyb)
    else:
        raise ValueError(f"unknown rotation strategy {rotation_strategy!r}")

    result: Optional[Ciphertext] = None
    for j in range(n2):
        partial: Optional[Ciphertext] = None
        for i in range(n1):
            diag = matrix_diagonal(matrix, n1 * j + i)
            rotated_diag = np.roll(diag, n1 * j)  # Rot_{-n1*j} of the diagonal
            # Encode at the last-prime scale so the final rescale restores
            # the input ciphertext scale (standard RNS-CKKS practice).
            pt_scale = float(ct.moduli[-1])
            pt = ctx.encode(rotated_diag, level=ct.level, scale=pt_scale)
            term = ops.mul_plain(baby[i], pt)
            partial = term if partial is None else ops.add(partial, term)
        if partial is None:
            raise InvariantViolation(
                "repro.fhe.bsgs.pt_mat_vec_mult",
                f"giant step {j} accumulated no diagonal terms",
            )
        if j:
            partial = _rotate_psum(ctx, partial, n1 * j)
        result = partial if result is None else ops.add(result, partial)
    if result is None:
        raise InvariantViolation(
            "repro.fhe.bsgs.pt_mat_vec_mult",
            "no giant-step partials were produced (empty matrix?)",
        )
    return ops.rescale(ctx, result)


def _rotate_psum(ctx: CKKSContext, ct: Ciphertext, amount: int) -> Ciphertext:
    """Giant-step rotation of an accumulated partial sum."""
    return ops.rotate(ctx, ct, amount)


def plaintext_mat_vec_reference(
    matrix: np.ndarray, vector: np.ndarray
) -> np.ndarray:
    """Cleartext oracle for tests."""
    return matrix @ vector
