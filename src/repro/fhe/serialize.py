"""Serialization of CKKS objects (npz-based).

Ciphertexts and evaluation keys are large (MBs at realistic parameters);
this module stores them as compressed numpy archives with a small JSON
header, so a client/server pair built on ``repro.fhe`` can exchange
encrypted payloads through files or sockets.

Only *public* material serializes: attempting to write a secret key
raises unless explicitly forced (guarding against the classic key-leak
accident).
"""

from __future__ import annotations

import io
import json
from typing import BinaryIO, Union

import numpy as np

from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.keys import EvaluationKey, SecretKey
from repro.fhe.poly import Domain, RnsPoly

_MAGIC = "repro-fhe-v1"


def _poly_arrays(prefix: str, poly: RnsPoly, arrays: dict, meta: dict) -> None:
    arrays[f"{prefix}.data"] = poly.data
    meta[prefix] = {
        "moduli": list(poly.moduli),
        "domain": poly.domain.value,
    }


def _poly_from(prefix: str, arrays, meta: dict) -> RnsPoly:
    info = meta[prefix]
    return RnsPoly(
        arrays[f"{prefix}.data"],
        tuple(info["moduli"]),
        Domain(info["domain"]),
    )


def dump_ciphertext(ct: Ciphertext, fp: Union[str, BinaryIO]) -> None:
    """Write a ciphertext to a file path or binary stream."""
    arrays: dict = {}
    meta: dict = {
        "magic": _MAGIC,
        "type": "ciphertext",
        "scale": ct.scale,
        "level": ct.level,
        "size": ct.size,
    }
    for i, poly in enumerate(ct.polys):
        _poly_arrays(f"poly{i}", poly, arrays, meta)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(fp, **arrays)


def load_ciphertext(fp: Union[str, BinaryIO]) -> Ciphertext:
    """Read a ciphertext written by :func:`dump_ciphertext`."""
    with np.load(fp) as data:
        meta = json.loads(bytes(data["__meta__"]).decode())
        if meta.get("magic") != _MAGIC or meta.get("type") != "ciphertext":
            raise ValueError("not a serialized ciphertext")
        polys = [
            _poly_from(f"poly{i}", data, meta) for i in range(meta["size"])
        ]
    return Ciphertext(polys, meta["scale"], meta["level"])


def dump_evaluation_key(key: EvaluationKey, fp: Union[str, BinaryIO]) -> None:
    """Write an evaluation key (public material)."""
    arrays: dict = {}
    meta: dict = {
        "magic": _MAGIC,
        "type": "evk",
        "level": key.level,
        "kind": key.kind,
        "digits": key.num_digits,
    }
    for j, (b, a) in enumerate(key.digits):
        _poly_arrays(f"d{j}.b", b, arrays, meta)
        _poly_arrays(f"d{j}.a", a, arrays, meta)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(fp, **arrays)


def load_evaluation_key(fp: Union[str, BinaryIO]) -> EvaluationKey:
    """Read an evaluation key written by :func:`dump_evaluation_key`."""
    with np.load(fp) as data:
        meta = json.loads(bytes(data["__meta__"]).decode())
        if meta.get("magic") != _MAGIC or meta.get("type") != "evk":
            raise ValueError("not a serialized evaluation key")
        digits = [
            (
                _poly_from(f"d{j}.b", data, meta),
                _poly_from(f"d{j}.a", data, meta),
            )
            for j in range(meta["digits"])
        ]
    return EvaluationKey(digits=digits, level=meta["level"], kind=meta["kind"])


def dump_secret_key(
    key: SecretKey, fp: Union[str, BinaryIO], i_know_what_i_am_doing: bool = False
) -> None:
    """Write a secret key.  Refuses unless explicitly forced."""
    if not i_know_what_i_am_doing:
        raise PermissionError(
            "refusing to serialize a secret key; pass "
            "i_know_what_i_am_doing=True if this is intentional"
        )
    arrays: dict = {}
    meta: dict = {"magic": _MAGIC, "type": "secret"}
    _poly_arrays("s", key.poly, arrays, meta)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(fp, **arrays)


def load_secret_key(fp: Union[str, BinaryIO]) -> SecretKey:
    """Read a secret key written by :func:`dump_secret_key`."""
    with np.load(fp) as data:
        meta = json.loads(bytes(data["__meta__"]).decode())
        if meta.get("magic") != _MAGIC or meta.get("type") != "secret":
            raise ValueError("not a serialized secret key")
        return SecretKey(poly=_poly_from("s", data, meta))


def ciphertext_bytes(ct: Ciphertext) -> bytes:
    """Serialize a ciphertext to bytes (wire format)."""
    buf = io.BytesIO()
    dump_ciphertext(ct, buf)
    return buf.getvalue()


def ciphertext_from_bytes(blob: bytes) -> Ciphertext:
    """Deserialize a ciphertext from its wire format."""
    return load_ciphertext(io.BytesIO(blob))
