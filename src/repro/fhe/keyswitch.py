"""The digit-decomposed key-switching pipeline (paper Figure 1).

Key-switching converts a polynomial ``d`` that is "encrypted" under some
key ``s'`` into a ciphertext decryptable under ``s``.  With the
Han-Ki digit decomposition it runs in four explicit steps, each of which
is a first-class operator in the CROPHE IR:

1. ``Decomp``  — split the ``(l+1) x N`` limb matrix into ``beta`` digits
   of ``alpha`` limbs each (pure data routing).
2. ``ModUp``   — per digit, base-convert from the digit basis ``Q_j`` to
   the extended basis ``P * Q`` (iNTT -> BConv -> NTT around the matrix
   multiply, since BConv needs the coefficient representation).
3. ``KSKInP``  — inner product with the evaluation key along the digit
   dimension ``beta`` (element-wise multiply-accumulate in NTT domain).
4. ``ModDown`` — divide by the special modulus ``P`` and return to the
   ``Q`` basis (again iNTT -> BConv -> NTT plus a correction).

The functions here are deliberately step-by-step rather than fused so
that tests can probe each stage and so the operator-count accounting
matches the IR builders one-to-one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import CKKSContext
from repro.fhe.keys import EvaluationKey
from repro.fhe.poly import Domain, RnsPoly
from repro.fhe.rns import BaseConverter, mod_inverse, mod_mul, mod_sub
from repro.resilience.errors import InvariantViolation


def decompose(d: RnsPoly, alpha: int) -> List[RnsPoly]:
    """``Decomp``: split limbs into digits of at most ``alpha`` limbs."""
    digits = []
    start = 0
    while start < d.num_limbs:
        end = min(start + alpha, d.num_limbs)
        digits.append(
            RnsPoly(d.data[start:end].copy(), d.moduli[start:end], d.domain)
        )
        start = end
    return digits


def mod_up(
    digit: RnsPoly, q_moduli: Sequence[int], p_moduli: Sequence[int]
) -> RnsPoly:
    """``ModUp``: extend a digit from its own basis to ``P * Q``.

    The digit's own limbs are carried over verbatim; the missing limbs of
    ``Q`` and all limbs of ``P`` are produced by base conversion in the
    coefficient domain (the iNTT -> BConv -> NTT sequence of Figure 1).
    The returned polynomial is in NTT domain over ``q_moduli + p_moduli``.
    """
    q_moduli = tuple(int(q) for q in q_moduli)
    p_moduli = tuple(int(p) for p in p_moduli)
    target_basis = q_moduli + p_moduli
    own = set(digit.moduli)
    missing = tuple(m for m in target_basis if m not in own)
    coeff_digit = digit.to_coeff()
    converter = BaseConverter(digit.moduli, missing)
    converted = converter.convert(coeff_digit.data)
    ext_coeff = RnsPoly(converted, missing, Domain.COEFF)
    ext_ntt = ext_coeff.to_ntt()
    own_ntt = digit.to_ntt()
    # Assemble rows in target basis order.
    n = digit.n
    rows = np.empty((len(target_basis), n), dtype=own_ntt.data.dtype)
    own_index = {q: i for i, q in enumerate(own_ntt.moduli)}
    ext_index = {q: i for i, q in enumerate(ext_ntt.moduli)}
    for row, q in enumerate(target_basis):
        if q in own_index:
            rows[row] = own_ntt.data[own_index[q]]
        else:
            rows[row] = ext_ntt.data[ext_index[q]]
    return RnsPoly(rows, target_basis, Domain.NTT)


def ksk_inner_product(
    digits_ext: Sequence[RnsPoly], evk: EvaluationKey
) -> Tuple[RnsPoly, RnsPoly]:
    """``KSKInP``: ``(sum_j d_j * evk_b_j, sum_j d_j * evk_a_j)``.

    Element-wise multiply-accumulate reducing along the digit dimension
    ``beta``; all operands live on the extended ``P * Q`` basis in NTT
    domain.
    """
    if len(digits_ext) != evk.num_digits:
        raise ValueError(
            f"{len(digits_ext)} digits vs evk with {evk.num_digits}"
        )
    acc_b = None
    acc_a = None
    for d_j, (b_j, a_j) in zip(digits_ext, evk.digits):
        term_b = d_j * b_j
        term_a = d_j * a_j
        acc_b = term_b if acc_b is None else acc_b + term_b
        acc_a = term_a if acc_a is None else acc_a + term_a
    if acc_b is None or acc_a is None:
        raise InvariantViolation(
            "repro.fhe.keyswitch.ksk_inner_product",
            "no digits accumulated (empty decomposition)",
        )
    return acc_b, acc_a


def mod_down(
    poly: RnsPoly, q_moduli: Sequence[int], p_moduli: Sequence[int]
) -> RnsPoly:
    """``ModDown``: divide by ``P`` and drop the special limbs.

    ``out = (x - BConv_{P->Q}([x]_P)) * P^{-1} mod Q``; the subtraction
    cancels ``x mod P`` so the difference is divisible by ``P`` up to the
    small base-conversion error.
    """
    q_moduli = tuple(int(q) for q in q_moduli)
    p_moduli = tuple(int(p) for p in p_moduli)
    if poly.moduli != q_moduli + p_moduli:
        raise ValueError("polynomial basis must be Q followed by P")
    coeff = poly.to_coeff()
    p_part = RnsPoly(
        coeff.data[len(q_moduli):].copy(), p_moduli, Domain.COEFF
    )
    converter = BaseConverter(p_moduli, q_moduli)
    p_in_q = converter.convert(p_part.data)
    big_p = 1
    for p in p_moduli:
        big_p *= p
    out = np.empty((len(q_moduli), poly.n), dtype=coeff.data.dtype)
    for i, q in enumerate(q_moduli):
        inv_p = mod_inverse(big_p, q)
        diff = mod_sub(coeff.data[i], p_in_q[i], q)
        out[i] = mod_mul(diff, np.int64(inv_p), q)
    return RnsPoly(out, q_moduli, Domain.COEFF).to_ntt()


def key_switch(
    ctx: CKKSContext, d: RnsPoly, evk: EvaluationKey
) -> Tuple[RnsPoly, RnsPoly]:
    """Full key-switch of a single polynomial ``d`` (NTT domain, Q basis).

    Returns the pair ``(ks_b, ks_a)`` over the same ``Q`` basis such that
    ``ks_b + ks_a * s ~= d * s'`` where ``s'`` is the key the ``evk``
    switches from.
    """
    level = d.num_limbs - 1
    if evk.level != level:
        raise ValueError(
            f"evk generated for level {evk.level}, data at level {level}"
        )
    q_moduli = ctx.params.moduli[: level + 1]
    p_moduli = ctx.params.special_moduli
    digits = decompose(d, ctx.params.alpha)
    digits_ext = [mod_up(dig, q_moduli, p_moduli) for dig in digits]
    acc_b, acc_a = ksk_inner_product(digits_ext, evk)
    ks_b = mod_down(acc_b, q_moduli, p_moduli)
    ks_a = mod_down(acc_a, q_moduli, p_moduli)
    return ks_b, ks_a
