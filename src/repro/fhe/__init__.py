"""Functional CKKS FHE substrate.

This subpackage implements the RNS-CKKS scheme from scratch: parameter
generation, residue number system arithmetic, negacyclic number theoretic
transforms (including the four-step decomposition used by CROPHE's NTT
optimization), encoding/decoding via the canonical embedding, key
generation, the digit-decomposed key-switching pipeline
(Decomp -> ModUp -> KSKInP -> ModDown), homomorphic operators
(HAdd/HMult/HRot/PMult/CMult/rescale), the three rotation strategies
compared in the paper (Min-KS, Hoisting, Hybrid), BSGS plaintext
matrix-vector multiplication, and a structural bootstrapping pipeline.

It serves two purposes: (1) a correct, testable reference of every FHE
operator the CROPHE scheduler reasons about, and (2) the ground truth for
operator-count formulas used by the analytical cost model.
"""

from repro.fhe.params import CKKSParams, PARAMETER_SETS, parameter_set
from repro.fhe.context import CKKSContext
from repro.fhe.poly import RnsPoly, Domain
from repro.fhe.ciphertext import Ciphertext, Plaintext

__all__ = [
    "CKKSParams",
    "PARAMETER_SETS",
    "parameter_set",
    "CKKSContext",
    "RnsPoly",
    "Domain",
    "Ciphertext",
    "Plaintext",
]
