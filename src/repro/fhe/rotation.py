"""Rotation strategies: Min-KS, Hoisting, and CROPHE's Hybrid (Figure 8).

BSGS-based PtMatVecMult needs the baby-step rotations
``HRot_i(ct) for i = 0 .. n1-1``.  Three ways to produce them:

* **Min-KS** (ARK):  a sequential chain of unit rotations, every step
  reusing the *same* evaluation key.  1 evk total, but ``n1 - 1`` full
  key-switches (ModUp + ModDown each) with a serial dependency.
* **Hoisting** (MAD):  Decomp + ModUp once on the input, then per target
  amount apply the automorphism to the *extended* digits, inner-product
  with that amount's own evk, and ModDown.  1 ModUp total, but ``n1 - 1``
  distinct evks.
* **Hybrid** (CROPHE):  coarse steps of ``r_hyb`` via a Min-KS chain,
  then from each coarse result a hoisting group for the ``r_hyb - 1``
  fine steps.  The fine-step evks (amounts ``1 .. r_hyb - 1``) are shared
  across *all* coarse groups — the new cross-operator sharing opportunity
  the paper exploits.

Every strategy returns both the rotated ciphertexts and an
:class:`RotationCounts` tally; tests assert the tallies match the paper's
closed-form trade-off (Section V-C) and that all three decrypt
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.fhe import keyswitch
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import CKKSContext
from repro.fhe.encoding import rotation_galois_element


@dataclass
class RotationCounts:
    """Operation tally for one baby-step rotation batch."""

    mod_ups: int = 0
    mod_downs: int = 0
    inner_products: int = 0
    automorphisms: int = 0
    evk_amounts: Set[int] = field(default_factory=set)

    @property
    def distinct_evks(self) -> int:
        return len(self.evk_amounts)


def _rotate_with_key(
    ctx: CKKSContext, ct: Ciphertext, r: int, counts: RotationCounts
) -> Ciphertext:
    """One full HRot (automorphism + complete key-switch), with tallies."""
    t = rotation_galois_element(ctx.params.n, r)
    b_rot = ct.polys[0].automorphism(t)
    a_rot = ct.polys[1].automorphism(t)
    counts.automorphisms += 1
    evk = ctx.rotation_key(r, ct.level)
    counts.evk_amounts.add(r % ctx.params.slots)
    ks_b, ks_a = keyswitch.key_switch(ctx, a_rot, evk)
    counts.mod_ups += 1
    counts.mod_downs += 1
    counts.inner_products += 1
    return Ciphertext([b_rot + ks_b, ks_a], ct.scale, ct.level)


def min_ks_rotations(
    ctx: CKKSContext, ct: Ciphertext, n1: int
) -> tuple[List[Ciphertext], RotationCounts]:
    """ARK's Min-KS: a unit-step chain, one shared evk (Figure 8a)."""
    counts = RotationCounts()
    out = [ct.copy()]
    current = ct
    for _ in range(1, n1):
        current = _rotate_with_key(ctx, current, 1, counts)
        out.append(current)
    return out, counts


def hoisted_rotations(
    ctx: CKKSContext, ct: Ciphertext, n1: int
) -> tuple[List[Ciphertext], RotationCounts]:
    """MAD's Hoisting: share Decomp/ModUp across rotations (Figure 8b).

    The automorphism commutes with Decomp and base conversion (both act
    identically on every coefficient position), so the extended digits of
    the input can be permuted per target amount instead of re-running
    ModUp for each.
    """
    counts = RotationCounts()
    out = [ct.copy()]
    if n1 <= 1:
        return out, counts
    level = ct.level
    q_moduli = ctx.params.moduli[: level + 1]
    p_moduli = ctx.params.special_moduli
    digits = keyswitch.decompose(ct.polys[1], ctx.params.alpha)
    digits_ext = [keyswitch.mod_up(d, q_moduli, p_moduli) for d in digits]
    counts.mod_ups += 1
    for r in range(1, n1):
        t = rotation_galois_element(ctx.params.n, r)
        rot_digits = [d.automorphism(t) for d in digits_ext]
        counts.automorphisms += 1
        b_rot = ct.polys[0].automorphism(t)
        evk = ctx.rotation_key(r, level)
        counts.evk_amounts.add(r % ctx.params.slots)
        acc_b, acc_a = keyswitch.ksk_inner_product(rot_digits, evk)
        counts.inner_products += 1
        ks_b = keyswitch.mod_down(acc_b, q_moduli, p_moduli)
        ks_a = keyswitch.mod_down(acc_a, q_moduli, p_moduli)
        counts.mod_downs += 1
        out.append(Ciphertext([b_rot + ks_b, ks_a], ct.scale, level))
    return out, counts


def hybrid_rotations(
    ctx: CKKSContext, ct: Ciphertext, n1: int, r_hyb: int
) -> tuple[List[Ciphertext], RotationCounts]:
    """CROPHE's hybrid rotation (Figure 8c).

    Coarse steps ``r_hyb, 2*r_hyb, ...`` follow a Min-KS chain using the
    single amount-``r_hyb`` evk; from each coarse result (including the
    original ciphertext) the fine steps ``1 .. r_hyb-1`` follow Hoisting.
    Fine evks are shared across all coarse groups.

    With ``r_hyb = 1`` this degenerates to pure Min-KS; with
    ``r_hyb >= n1`` to pure Hoisting.
    """
    if r_hyb < 1:
        raise ValueError("r_hyb must be >= 1")
    counts = RotationCounts()
    num_coarse = -(n1 // -r_hyb)  # ceil(n1 / r_hyb) groups incl. the base
    coarse_bases: List[Ciphertext] = [ct.copy()]
    current = ct
    for _ in range(1, num_coarse):
        current = _rotate_with_key(ctx, current, r_hyb, counts)
        coarse_bases.append(current)
    out: List[Ciphertext] = [None] * n1  # type: ignore[list-item]
    level = ct.level
    q_moduli = ctx.params.moduli[: level + 1]
    p_moduli = ctx.params.special_moduli
    for g, base in enumerate(coarse_bases):
        base_amount = g * r_hyb
        out[base_amount] = base
        fine_max = min(r_hyb - 1, n1 - 1 - base_amount)
        if fine_max < 1:
            continue
        digits = keyswitch.decompose(base.polys[1], ctx.params.alpha)
        digits_ext = [keyswitch.mod_up(d, q_moduli, p_moduli) for d in digits]
        counts.mod_ups += 1
        for r in range(1, fine_max + 1):
            t = rotation_galois_element(ctx.params.n, r)
            rot_digits = [d.automorphism(t) for d in digits_ext]
            counts.automorphisms += 1
            b_rot = base.polys[0].automorphism(t)
            evk = ctx.rotation_key(r, level)
            counts.evk_amounts.add(r % ctx.params.slots)
            acc_b, acc_a = keyswitch.ksk_inner_product(rot_digits, evk)
            counts.inner_products += 1
            ks_b = keyswitch.mod_down(acc_b, q_moduli, p_moduli)
            ks_a = keyswitch.mod_down(acc_a, q_moduli, p_moduli)
            counts.mod_downs += 1
            out[base_amount + r] = Ciphertext(
                [b_rot + ks_b, ks_a], base.scale, level
            )
    return out, counts


def hybrid_cost_summary(n1: int, r_hyb: int) -> Dict[str, int]:
    """Closed-form cost of hybrid rotation (the scheduler's formulas).

    Matches Section V-C: ``ceil(n1/r_hyb) - 1`` coarse Min-KS steps, each
    coarse group hoisting at most ``r_hyb - 1`` fine steps, fine evks
    shared across groups.
    """
    if r_hyb < 1:
        raise ValueError("r_hyb must be >= 1")
    num_groups = -(n1 // -r_hyb)
    coarse_steps = num_groups - 1
    fine_steps = n1 - num_groups
    # ModUps: one per coarse step (Min-KS) plus one per group that has
    # any fine step.
    groups_with_fine = sum(
        1 for g in range(num_groups) if min(r_hyb - 1, n1 - 1 - g * r_hyb) >= 1
    )
    distinct_fine_evks = min(r_hyb - 1, n1 - 1)
    evks = distinct_fine_evks + (1 if coarse_steps else 0)
    return {
        "coarse_steps": coarse_steps,
        "fine_steps": fine_steps,
        "mod_ups": coarse_steps + groups_with_fine,
        "mod_downs": coarse_steps + fine_steps,
        "distinct_evks": evks,
    }
