"""Key material containers for RNS-CKKS."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.fhe.poly import RnsPoly


@dataclass
class SecretKey:
    """Ternary secret key polynomial ``s`` (stored per usable basis)."""

    poly: RnsPoly  # over the full basis Q_L + P, NTT domain


@dataclass
class PublicKey:
    """Encryption key: ``(b, a) = (-a*s + e, a)`` over the Q basis."""

    b: RnsPoly
    a: RnsPoly


@dataclass
class EvaluationKey:
    """A key-switching key from some ``s'`` to ``s``.

    One digit entry per decomposition digit; each entry is a pair of
    polynomials over the extended basis ``P * Q_level``.  Shape per the
    paper: ``2 x beta x (alpha + level + 1) x N``.

    Attributes:
        digits: list of ``(b_j, a_j)`` pairs, one per digit.
        level: the ciphertext level this key was generated for.
        kind: descriptive tag ("relin", "rot:5", "conj").
    """

    digits: List[Tuple[RnsPoly, RnsPoly]]
    level: int
    kind: str = "relin"

    @property
    def num_digits(self) -> int:
        return len(self.digits)

    def element_count(self) -> int:
        """Total residue elements (matches CKKSParams.evk_elements)."""
        total = 0
        for b, a in self.digits:
            total += b.data.size + a.data.size
        return total
