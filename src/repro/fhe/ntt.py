"""Negacyclic number theoretic transforms.

Polynomial multiplication in ``Z_q[X]/(X^N + 1)`` uses the *negacyclic*
NTT: with ``psi`` a primitive ``2N``-th root of unity mod ``q`` and
``omega = psi**2``, the transform evaluates the polynomial at the odd
powers of ``psi``::

    a_hat[j] = a(psi**(2*j + 1))        j = 0 .. N-1

Two implementations are provided and tested against each other:

* :meth:`NttContext.forward` / :meth:`NttContext.inverse` — the classic
  iterative Cooley-Tukey transform (``log N`` butterfly stages), which is
  what a monolithic NTT unit computes.
* :meth:`NttContext.forward_four_step` — the four-step decomposition
  ``N = N1 x N2`` into column NTTs, an element-wise twiddle multiplication,
  and row NTTs.  This is the decomposition CROPHE's scheduler exploits
  (Section V-B) to expose independent ``N1``/``N2`` loops for fine-grained
  cross-operator pipelining.  Both produce bit-identical outputs.

Keeping outputs in natural evaluation order (index ``j`` maps to the
point ``psi**(2j+1)``) makes Galois automorphisms a clean permutation in
the NTT domain (see :func:`galois_eval_permutation`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.fhe.params import primitive_root_of_unity
from repro.fhe.rns import INT, mod_inverse


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices."""
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


class NttContext:
    """Precomputed NTT tables for one (n, q) pair."""

    def __init__(self, n: int, q: int):
        if n & (n - 1):
            raise ValueError("n must be a power of two")
        if (q - 1) % (2 * n):
            raise ValueError(f"q={q} is not NTT-friendly for n={n}")
        self.n = n
        self.q = int(q)
        self.psi = primitive_root_of_unity(2 * n, self.q)
        self.omega = self.psi * self.psi % self.q
        self.n_inv = mod_inverse(n, self.q)
        # Twist factors psi^i and psi^{-i}, i in [0, n).
        self.psi_powers = self._power_table(self.psi, n)
        self.psi_inv_powers = self._power_table(mod_inverse(self.psi, self.q), n)
        # omega^i and omega^{-i} for the cyclic core.
        self.omega_powers = self._power_table(self.omega, n)
        self.omega_inv_powers = self._power_table(mod_inverse(self.omega, self.q), n)
        self._bitrev = bit_reverse_permutation(n)

    def _power_table(self, base: int, count: int) -> np.ndarray:
        powers = np.empty(count, dtype=INT)
        acc = 1
        for i in range(count):
            powers[i] = acc
            acc = acc * base % self.q
        return powers

    # ------------------------------------------------------------------
    # Monolithic transform
    # ------------------------------------------------------------------

    def _cyclic_core(self, values: np.ndarray, omega_powers: np.ndarray) -> np.ndarray:
        """Iterative radix-2 cyclic NTT, natural-in / natural-out order."""
        n = self.n
        q = self.q
        a = values[self._bitrev].astype(INT)
        m = 1
        while m < n:
            stride = n // (2 * m)
            w = omega_powers[::stride][:m]
            blocks = a.reshape(-1, 2 * m)
            lo = blocks[:, :m]
            hi = np.mod(blocks[:, m:] * w, q)
            blocks[:, m:] = np.mod(lo - hi, q)
            blocks[:, :m] = np.mod(lo + hi, q)
            a = blocks.reshape(-1)
            m *= 2
        return a

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT: coefficient -> evaluation representation."""
        coeffs = np.asarray(coeffs, dtype=INT)
        if coeffs.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {coeffs.shape}")
        twisted = np.mod(coeffs * self.psi_powers, self.q)
        return self._cyclic_core(twisted, self.omega_powers)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT: evaluation -> coefficient representation."""
        evals = np.asarray(evals, dtype=INT)
        if evals.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {evals.shape}")
        core = self._cyclic_core(evals, self.omega_inv_powers)
        untwisted = np.mod(core * self.psi_inv_powers, self.q)
        return np.mod(untwisted * np.int64(self.n_inv), self.q)

    # ------------------------------------------------------------------
    # Four-step decomposition (Section V-B)
    # ------------------------------------------------------------------

    def forward_four_step(self, coeffs: np.ndarray, n1: int, n2: int) -> np.ndarray:
        """Four-step negacyclic NTT with ``N = n1 * n2``.

        Step structure (after the negacyclic twist):

        1. ``n1`` independent length-``n2`` column NTTs,
        2. element-wise twiddle multiplication by ``omega**(i1*j2)``,
        3. ``n2`` independent length-``n1`` row NTTs,
        4. transpose read-out.

        The column/row NTT instances are independent along ``n1``/``n2``
        respectively, which is exactly the loop structure the CROPHE
        scheduler pipelines across adjacent operators.
        """
        if n1 * n2 != self.n:
            raise ValueError(f"n1*n2 = {n1 * n2} != n = {self.n}")
        if (n1 & (n1 - 1)) or (n2 & (n2 - 1)):
            raise ValueError("n1 and n2 must be powers of two")
        q = self.q
        coeffs = np.asarray(coeffs, dtype=INT)
        twisted = np.mod(coeffs * self.psi_powers, q)
        # b[i1, i2] = twisted[i1 + n1*i2]
        b = twisted.reshape(n2, n1).T.copy()
        # Step 1: length-n2 NTT along axis 1 (one instance per i1 row).
        sub2 = _sub_context(self.q, n2, self.omega, self.n // n2)
        for i1 in range(n1):
            b[i1] = sub2.cyclic(b[i1])
        # Step 2: twiddles omega^(i1*j2).
        i1_idx = np.arange(n1).reshape(-1, 1)
        j2_idx = np.arange(n2).reshape(1, -1)
        twiddle_exp = np.mod(i1_idx * j2_idx, self.n)
        b = np.mod(b * self.omega_powers[twiddle_exp], q)
        # Step 3: length-n1 NTT along axis 0 (one instance per j2 column).
        sub1 = _sub_context(self.q, n1, self.omega, self.n // n1)
        for j2 in range(n2):
            b[:, j2] = sub1.cyclic(b[:, j2])
        # Step 4: out[j2 + n2*j1] = b[j1, j2].
        return b.reshape(n1 * n2)

    def inverse_four_step(self, evals: np.ndarray, n1: int, n2: int) -> np.ndarray:
        """Four-step inverse negacyclic NTT (mirror of the forward)."""
        if n1 * n2 != self.n:
            raise ValueError(f"n1*n2 = {n1 * n2} != n = {self.n}")
        q = self.q
        evals = np.asarray(evals, dtype=INT)
        # Invert step 4: b[j1, j2] = evals[j2 + n2*j1].
        b = evals.reshape(n1, n2).astype(INT)
        # Invert step 3.
        omega_inv = mod_inverse(self.omega, q)
        sub1 = _sub_context(self.q, n1, omega_inv, self.n // n1)
        for j2 in range(n2):
            b[:, j2] = sub1.cyclic(b[:, j2])
        b = np.mod(b * np.int64(mod_inverse(n1, q)), q)
        # Invert step 2.
        i1_idx = np.arange(n1).reshape(-1, 1)
        j2_idx = np.arange(n2).reshape(1, -1)
        twiddle_exp = np.mod(i1_idx * j2_idx, self.n)
        b = np.mod(b * self.omega_inv_powers[twiddle_exp], q)
        # Invert step 1.
        sub2 = _sub_context(self.q, n2, omega_inv, self.n // n2)
        for i1 in range(n1):
            b[i1] = sub2.cyclic(b[i1])
        b = np.mod(b * np.int64(mod_inverse(n2, q)), q)
        # Undo the reshape and negacyclic twist.
        flat = b.T.reshape(self.n)
        return np.mod(flat * self.psi_inv_powers, q)


class _SubNtt:
    """Cyclic NTT of a sub-length with a derived root (four-step helper)."""

    def __init__(self, q: int, n: int, root: int):
        self.q = q
        self.n = n
        powers = np.empty(n, dtype=INT)
        acc = 1
        for i in range(n):
            powers[i] = acc
            acc = acc * root % q
        self.root_powers = powers
        self._bitrev = bit_reverse_permutation(n)

    def cyclic(self, values: np.ndarray) -> np.ndarray:
        n, q = self.n, self.q
        a = values[self._bitrev].astype(INT)
        m = 1
        while m < n:
            stride = n // (2 * m)
            w = self.root_powers[::stride][:m]
            blocks = a.reshape(-1, 2 * m)
            lo = blocks[:, :m]
            hi = np.mod(blocks[:, m:] * w, q)
            blocks[:, m:] = np.mod(lo - hi, q)
            blocks[:, :m] = np.mod(lo + hi, q)
            a = blocks.reshape(-1)
            m *= 2
        return a


@lru_cache(maxsize=256)
def _sub_context(q: int, n: int, omega: int, stride: int) -> _SubNtt:
    root = pow(omega, stride, q)
    return _SubNtt(q, n, root)


_CONTEXT_CACHE: Dict[Tuple[int, int], NttContext] = {}


def get_ntt_context(n: int, q: int) -> NttContext:
    """Cached NTT context lookup (tables are expensive to rebuild)."""
    key = (n, int(q))
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is None:
        ctx = NttContext(n, q)
        _CONTEXT_CACHE[key] = ctx
    return ctx


def negacyclic_convolve_reference(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """O(N^2) schoolbook negacyclic convolution (test oracle)."""
    n = len(a)
    out = np.zeros(n, dtype=object)
    for i in range(n):
        for j in range(n):
            k = i + j
            term = int(a[i]) * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.array([int(v) % q for v in out], dtype=INT)


def galois_eval_permutation(n: int, t: int) -> np.ndarray:
    """Permutation applying ``a(X) -> a(X^t)`` in the NTT domain.

    With natural evaluation order (index ``j`` holds ``a(psi^(2j+1))``),
    the automorphism maps evaluation points: the output at index ``j``
    must hold ``a(psi^((2j+1)*t))``, i.e. the input value at index
    ``j' = ((2j+1)*t mod 2n - 1) / 2``.  ``t`` must be odd so that the
    map is a bijection on odd residues mod ``2n``.
    """
    if t % 2 == 0:
        raise ValueError("Galois element must be odd")
    j = np.arange(n, dtype=np.int64)
    src = ((2 * j + 1) * t % (2 * n) - 1) // 2
    return src


def galois_coeff(coeffs: np.ndarray, t: int, q: int) -> np.ndarray:
    """Apply ``a(X) -> a(X^t)`` in the coefficient domain.

    Coefficient ``i`` of the input lands at position ``i*t mod 2n``; a
    position ``>= n`` wraps with a sign flip because ``X^n = -1``.
    """
    n = len(coeffs)
    out = np.zeros(n, dtype=INT)
    idx = np.arange(n, dtype=np.int64)
    dest = idx * t % (2 * n)
    wrap = dest >= n
    dest = np.where(wrap, dest - n, dest)
    vals = np.where(wrap, np.mod(-coeffs, q), coeffs)
    out[dest] = vals
    return out
