"""Noise budget estimation and measurement for CKKS.

Two complementary tools:

* :class:`NoiseEstimator` — closed-form *a priori* growth model (fresh
  encryption, addition, multiplication, key-switch, rescale), in the
  style of the heuristic bounds used to pick parameters.
* :func:`measure_noise_bits` — *a posteriori* measurement against a
  known plaintext: encrypts/computes/decrypts and reports the actual
  error magnitude in bits, used by tests to validate the estimator's
  ordering (estimates must upper-bound measurements).

Noise here means the absolute error on the decrypted *scaled* values
(coefficient domain), reported as ``log2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.context import CKKSContext
from repro.fhe.params import CKKSParams


@dataclass
class NoiseState:
    """Tracked noise of one ciphertext (log2 of absolute error)."""

    log_noise: float
    level: int
    log_scale: float

    @property
    def budget_bits(self) -> float:
        """Bits of headroom between the scale and the noise."""
        return self.log_scale - self.log_noise


class NoiseEstimator:
    """Heuristic noise-growth model for RNS-CKKS.

    Uses the standard circular-security heuristics: fresh noise
    ``~ sigma * sqrt(N)``; multiplication scales noise by the other
    operand's magnitude; key-switching adds
    ``~ beta * N * sigma * Q_digit / P``; rescale divides by the dropped
    prime and adds a rounding term ``~ sqrt(N)``.
    """

    def __init__(self, params: CKKSParams, sigma: float = 3.2):
        self.params = params
        self.sigma = sigma

    # -- per-operation transfer functions --------------------------------

    def fresh(self, level: Optional[int] = None,
              log_scale: Optional[float] = None) -> NoiseState:
        """Noise of a freshly encrypted ciphertext."""
        level = self.params.max_level if level is None else level
        log_scale = (
            float(self.params.scale_bits) if log_scale is None else log_scale
        )
        # Fresh noise: two error-times-ternary convolution terms
        # (v*e_pk and e1*s) of magnitude ~ sigma * sqrt(2N/3) each, plus
        # encode rounding and canonical-embedding spread.
        log_noise = math.log2(self.sigma) + 0.5 * self.params.log_n + 3.0
        return NoiseState(log_noise, level, log_scale)

    def add(self, a: NoiseState, b: NoiseState) -> NoiseState:
        """Noise after a homomorphic addition."""
        if a.level != b.level:
            raise ValueError("level mismatch in noise model")
        return NoiseState(
            max(a.log_noise, b.log_noise) + 1.0, a.level, a.log_scale
        )

    def _keyswitch_noise(self, level: int) -> float:
        """log2 noise added by one key switch at ``level``."""
        q_bits = self._prime_bits()
        digit_bits = min(self.params.alpha, level + 1) * q_bits
        p_bits = self.params.alpha * (q_bits + 1)
        return (
            math.log2(self.sigma)
            + self.params.log_n
            + digit_bits - p_bits
            + math.log2(self.params.digits_at_level(level))
            + 2.0  # ModDown rounding margin
        )

    def multiply(
        self, a: NoiseState, b: NoiseState,
        log_message_a: float = 0.0, log_message_b: float = 0.0,
    ) -> NoiseState:
        """HMult including relinearization.

        ``log_message_*`` are log2 magnitudes of the plaintext values
        (noise is amplified by the *other* operand's magnitude x scale).
        """
        if a.level != b.level:
            raise ValueError("level mismatch in noise model")
        cross_a = a.log_noise + b.log_scale + log_message_b
        cross_b = b.log_noise + a.log_scale + log_message_a
        ks = self._keyswitch_noise(a.level)
        log_noise = max(cross_a, cross_b, ks) + 1.0
        return NoiseState(log_noise, a.level, a.log_scale + b.log_scale)

    def rotate(self, a: NoiseState) -> NoiseState:
        """Noise after an HRot (automorphism + key switch)."""
        ks = self._keyswitch_noise(a.level)
        return NoiseState(
            max(a.log_noise, ks) + 1.0, a.level, a.log_scale
        )

    def rescale(self, a: NoiseState) -> NoiseState:
        """Noise after dividing by the dropped prime."""
        if a.level == 0:
            raise ValueError("cannot rescale at level 0")
        q_bits = self._prime_bits()
        rounded = max(a.log_noise - q_bits, 0.5 * self.params.log_n)
        return NoiseState(rounded + 1.0, a.level - 1, a.log_scale - q_bits)

    def _prime_bits(self) -> float:
        if self.params.moduli:
            return math.log2(self.params.moduli[-1])
        return float(max(self.params.word_bits - 4, self.params.scale_bits))

    # -- circuit-level helper ---------------------------------------------

    def depth_budget(self) -> int:
        """Multiplications (with rescale) before the budget runs out."""
        state = self.fresh()
        depth = 0
        while state.level > 0:
            state = self.rescale(self.multiply(state, state))
            if state.budget_bits <= 0:
                break
            depth += 1
        return depth


def measure_noise_bits(
    ctx: CKKSContext, ct: Ciphertext, expected: Sequence[complex]
) -> float:
    """Measured log2 absolute error of a ciphertext vs. its expectation.

    The error is measured on the decoded slot values and rescaled to the
    coefficient domain (multiplied by the nominal scale) so it is
    comparable with :class:`NoiseEstimator` outputs.
    """
    got = ctx.decrypt_decode(ct, len(expected))
    err = np.max(np.abs(np.asarray(got) - np.asarray(expected)))
    absolute = max(err * ct.scale, 1e-12)
    return math.log2(absolute)
