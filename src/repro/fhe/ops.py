"""Homomorphic operators on CKKS ciphertexts.

Implements the operator set from Section II-A of the paper: HAdd, HSub,
HMult (tensor product + relinearization), CAdd/CMult (scalar), PAdd/PMult
(plaintext), HRescale, HRot (automorphism + key-switch), and HConj.  All
operators validate scale/level compatibility so misuse fails loudly.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.fhe import keyswitch
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.context import CKKSContext
from repro.fhe.encoding import (
    conjugation_galois_element,
    rotation_galois_element,
)
from repro.fhe.poly import Domain, RnsPoly
from repro.fhe.rns import flooring_scale

# Rescaling leaves the scale at Delta**2 / q_l, which differs from Delta by
# the (prime - 2**scale_bits) / prime ratio; treat scales this close as equal
# the way production CKKS libraries do.
_SCALE_RTOL = 1e-3


def _check_same_shape(ct0: Ciphertext, ct1: Ciphertext) -> None:
    if ct0.level != ct1.level:
        raise ValueError(f"level mismatch: {ct0.level} vs {ct1.level}")
    if not math.isclose(ct0.scale, ct1.scale, rel_tol=_SCALE_RTOL):
        raise ValueError(f"scale mismatch: {ct0.scale} vs {ct1.scale}")


def add(ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
    """HAdd: component-wise polynomial addition."""
    _check_same_shape(ct0, ct1)
    if ct0.size != ct1.size:
        raise ValueError("ciphertext sizes differ")
    polys = [p0 + p1 for p0, p1 in zip(ct0.polys, ct1.polys)]
    return Ciphertext(polys, ct0.scale, ct0.level)


def sub(ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
    """HSub: component-wise polynomial subtraction."""
    _check_same_shape(ct0, ct1)
    if ct0.size != ct1.size:
        raise ValueError("ciphertext sizes differ")
    polys = [p0 - p1 for p0, p1 in zip(ct0.polys, ct1.polys)]
    return Ciphertext(polys, ct0.scale, ct0.level)


def negate(ct: Ciphertext) -> Ciphertext:
    """Negation of every component."""
    return Ciphertext([-p for p in ct.polys], ct.scale, ct.level)


def add_plain(ct: Ciphertext, pt: Plaintext) -> Ciphertext:
    """PAdd: add an encoded plaintext to the ``b`` component."""
    if pt.level != ct.level:
        raise ValueError(f"level mismatch: ct {ct.level} vs pt {pt.level}")
    if not math.isclose(pt.scale, ct.scale, rel_tol=_SCALE_RTOL):
        raise ValueError(f"scale mismatch: ct {ct.scale} vs pt {pt.scale}")
    polys = [ct.polys[0] + pt.poly.to_ntt()] + [p.copy() for p in ct.polys[1:]]
    return Ciphertext(polys, ct.scale, ct.level)


def mul_plain(ct: Ciphertext, pt: Plaintext) -> Ciphertext:
    """PMult: multiply every component by an encoded plaintext.

    The result's scale is the product of the operand scales; a rescale is
    usually required afterwards.
    """
    if pt.level != ct.level:
        raise ValueError(f"level mismatch: ct {ct.level} vs pt {pt.level}")
    pt_ntt = pt.poly.to_ntt()
    polys = [p * pt_ntt for p in ct.polys]
    return Ciphertext(polys, ct.scale * pt.scale, ct.level)


def add_scalar(ctx: CKKSContext, ct: Ciphertext, value: complex) -> Ciphertext:
    """CAdd: add a constant to all slots."""
    pt = ctx.encode([value] * ctx.params.slots, level=ct.level, scale=ct.scale)
    return add_plain(ct, pt)


def mul_scalar(
    ctx: CKKSContext,
    ct: Ciphertext,
    value: complex,
    pt_scale: Optional[float] = None,
) -> Ciphertext:
    """CMult: multiply all slots by a constant.

    The constant is encoded at ``pt_scale`` (default: the last prime of
    the current basis, so that a following rescale restores the input
    scale exactly in the RNS-CKKS style).
    """
    if pt_scale is None:
        pt_scale = float(ct.moduli[-1])
    pt = ctx.encode([value] * ctx.params.slots, level=ct.level, scale=pt_scale)
    return mul_plain(ct, pt)


def mul_scalar_integer(ct: Ciphertext, value: int) -> Ciphertext:
    """Multiply by a small integer without consuming scale."""
    polys = [p.scalar_mul(value) for p in ct.polys]
    return Ciphertext(polys, ct.scale, ct.level)


def tensor(ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
    """The tensor product step of HMult: ``(d0, d1, d2)``.

    Operand scales need not match — the product's scale is tracked
    exactly as their product, which is what keeps deep circuits (e.g.
    EvalMod's Horner/squaring chain) numerically faithful.
    """
    if ct0.level != ct1.level:
        raise ValueError(f"level mismatch: {ct0.level} vs {ct1.level}")
    if ct0.size != 2 or ct1.size != 2:
        raise ValueError("tensor product requires size-2 ciphertexts")
    b0, a0 = ct0.polys
    b1, a1 = ct1.polys
    d0 = b0 * b1
    d1 = a0 * b1 + b0 * a1
    d2 = a0 * a1
    return Ciphertext([d0, d1, d2], ct0.scale * ct1.scale, ct0.level)


def relinearize(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """KeySwitch the ``d2`` component back onto ``(b, a)``."""
    if ct.size != 3:
        raise ValueError("relinearization expects a size-3 ciphertext")
    evk = ctx.relin_key(ct.level)
    ks_b, ks_a = keyswitch.key_switch(ctx, ct.polys[2], evk)
    return Ciphertext(
        [ct.polys[0] + ks_b, ct.polys[1] + ks_a], ct.scale, ct.level
    )


def multiply(ctx: CKKSContext, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
    """HMult: tensor product followed by relinearization (no rescale)."""
    return relinearize(ctx, tensor(ct0, ct1))


def square(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """Homomorphic squaring (same pipeline as HMult)."""
    return multiply(ctx, ct, ct)


def rescale(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """HRescale: divide by the last prime modulus and drop a level."""
    if ct.level == 0:
        raise ValueError("cannot rescale at level 0")
    last = ct.moduli[-1]
    new_polys = []
    for p in ct.polys:
        coeff = p.to_coeff()
        scaled = flooring_scale(coeff.data, list(coeff.moduli), last)
        new_polys.append(
            RnsPoly(scaled, coeff.moduli[:-1], Domain.COEFF).to_ntt()
        )
    return Ciphertext(new_polys, ct.scale / last, ct.level - 1)


def level_down(ct: Ciphertext, target_level: int) -> Ciphertext:
    """Drop limbs (without dividing) to reach a lower level."""
    if target_level > ct.level:
        raise ValueError("cannot raise the level by dropping limbs")
    polys = ct.polys
    level = ct.level
    while level > target_level:
        polys = [p.drop_last_limb() for p in polys]
        level -= 1
    return Ciphertext([p.copy() for p in polys], ct.scale, level)


def automorphism(ct: Ciphertext, t: int) -> Ciphertext:
    """Apply the Galois map to every component (no key-switch)."""
    return Ciphertext(
        [p.automorphism(t) for p in ct.polys], ct.scale, ct.level
    )


def rotate(ctx: CKKSContext, ct: Ciphertext, r: int) -> Ciphertext:
    """HRot: rotate slot contents left by ``r`` positions.

    Implements ``ct_rot = (sigma(b), 0) + KeySwitch(sigma(a))`` with
    ``sigma = X -> X^{5^r}``, per Section II-A.
    """
    if ct.size != 2:
        raise ValueError("rotation expects a size-2 ciphertext")
    r = r % ctx.params.slots
    if r == 0:
        return ct.copy()
    t = rotation_galois_element(ctx.params.n, r)
    b_rot = ct.polys[0].automorphism(t)
    a_rot = ct.polys[1].automorphism(t)
    evk = ctx.rotation_key(r, ct.level)
    ks_b, ks_a = keyswitch.key_switch(ctx, a_rot, evk)
    return Ciphertext([b_rot + ks_b, ks_a], ct.scale, ct.level)


def conjugate(ctx: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """HConj: complex-conjugate all slots (Galois element ``-1``)."""
    if ct.size != 2:
        raise ValueError("conjugation expects a size-2 ciphertext")
    t = conjugation_galois_element(ctx.params.n)
    b_c = ct.polys[0].automorphism(t)
    a_c = ct.polys[1].automorphism(t)
    evk = ctx.conjugation_key(ct.level)
    ks_b, ks_a = keyswitch.key_switch(ctx, a_c, evk)
    return Ciphertext([b_c + ks_b, ks_a], ct.scale, ct.level)
