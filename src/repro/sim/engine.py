"""The group-level event simulator.

For each scheduled step the engine derives per-resource busy times:

* **PEs** — every operator occupies its allocated PEs for its pipelined
  cycle count; PE busy time integrates (pes x cycles) over operators.
* **NoC** — matched producer->consumer edges ship their tensor over the
  mesh; the busy time scales with bytes x hops over total link capacity
  (the mapping provides real hop counts; without one, an average-hop
  estimate is used).
* **SRAM / DRAM / transpose** — queue the step's effective byte counts
  on the respective bandwidths.

The step's duration is the slowest resource (operators stream in a fine
-grained pipeline, so resources overlap within a step), plus a
synchronous group-switch barrier (Section IV-A).  Utilization =
integrated busy time / (duration x capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.errors import ConfigError, SimulationError

from repro.hw.config import HardwareConfig
from repro.hw.memory import HbmMemory, SramBuffer
from repro.hw.noc import MeshNoc
from repro.hw.pe import operator_cycles
from repro.hw.transpose import TransposeUnit
from repro.ir.operators import OpKind
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.tracer import span as _span
from repro.sched.dataflow import Schedule, ScheduledStep
from repro.sched.mapper import GroupMapping, map_group
from repro.sim.stats import (
    TrafficReport,
    UtilizationReport,
    bottleneck_order,
    dominant,
)
from repro.sim.trace import EventKind, TraceEvent

#: Attribution precedence for per-step bottleneck winners (ties go to
#: the earlier resource), derived from the canonical
#: :data:`~repro.sim.stats.BOTTLENECK_PRECEDENCE` (``tpu`` is the
#: engine's spelling of the transpose unit).
BOTTLENECK_ORDER = bottleneck_order(("pe", "noc", "dram", "sram", "tpu"))

#: Synchronous group-switch overhead (drain + reconfigure), in cycles.
BARRIER_CYCLES = 200


@dataclass
class SimResult:
    """Outcome of simulating one schedule."""

    total_seconds: float
    utilization: UtilizationReport
    traffic: TrafficReport
    num_groups: int
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1e3


class SimulationEngine:
    """Simulates a schedule on a hardware configuration."""

    def __init__(
        self,
        config: HardwareConfig,
        collect_trace: bool = False,
        residency_fraction: float = 0.5,
        constant_share: int = 1,
        verify: bool = True,
    ):
        if not 0.0 <= residency_fraction <= 1.0:
            raise ConfigError(
                "residency_fraction", residency_fraction,
                "must lie in [0, 1] — a fraction of the SRAM capacity",
            )
        if not isinstance(constant_share, int) or constant_share < 1:
            raise ConfigError(
                "constant_share", constant_share,
                "at least one cluster must consume each constant fetch",
            )
        self.config = config
        self.collect_trace = collect_trace
        self.residency_fraction = residency_fraction
        self.constant_share = constant_share
        self.verify = verify
        self._noc = MeshNoc.for_config(config)
        self._hbm = HbmMemory.for_config(config)
        self._sram = SramBuffer.for_config(config)
        self._tpu = TransposeUnit.for_config(config)

    def run(self, schedule: Schedule) -> SimResult:
        """Simulate a schedule and return time/utilization/traffic.

        Unless constructed with ``verify=False``, the engine first runs
        the per-step legality rules (:func:`repro.analysis.
        schedule_verify.verify_steps`) plus the whole-graph level-budget
        propagation (:func:`repro.analysis.flow.verify_levels`, F001)
        over every distinct graph the steps reference, and refuses
        schedules whose steps are non-physical, so cost-model bugs
        surface as a typed :class:`SimulationError` instead of silently
        wrong numbers.
        """
        if self.verify:
            from repro.analysis.flow import verify_levels
            from repro.analysis.schedule_verify import verify_steps

            report = verify_steps(schedule.steps, self.config)
            seen_graphs = set()
            for step in schedule.steps:
                graph = step.plan.graph
                if graph is None or id(graph) in seen_graphs:
                    continue
                seen_graphs.add(id(graph))
                verify_levels(graph, report)
            if not report.ok:
                raise SimulationError(
                    "schedule failed pre-run verification",
                    detail=report.render_text(),
                )
        cfg = self.config
        freq = cfg.frequency_ghz * 1e9
        total_seconds = 0.0
        busy = {
            "pe": 0.0, "noc": 0.0, "sram": 0.0, "dram": 0.0, "tpu": 0.0
        }
        traffic = TrafficReport()
        events: List[TraceEvent] = []
        #: Simulated-timeline cursor (cycles) stamping collected events.
        clock = 0.0

        # Steady-state constant residency across repeats: constants that
        # fit the residency pool stay on-chip after the first (cold)
        # iteration, so warm iterations skip those DRAM fetches.  This is
        # the same key-reuse window every evaluated design gets.
        warm_residents = self._steady_state_constants(schedule)

        sim_span = _span(
            "sim.run", steps=len(schedule.steps), repeat=schedule.repeat
        )
        with sim_span:
            for warm in (False, True) if schedule.repeat > 1 else (False,):
                pass_seconds = 0.0
                pass_busy = {k: 0.0 for k in busy}
                pass_traffic = TrafficReport()
                for gi, step in enumerate(schedule.steps):
                    try:
                        mapping = map_group(step.plan)
                        duration, step_busy, m = self._simulate_step(
                            gi, step, mapping, events,
                            extra_resident=(
                                warm_residents if warm else frozenset()
                            ),
                            start_cycle=int(clock),
                        )
                    except SimulationError:
                        raise
                    except Exception as exc:
                        raise SimulationError(
                            "step simulation failed", group_index=gi,
                            detail=f"{type(exc).__name__}: {exc}",
                        ) from exc
                    if not math.isfinite(duration) or duration < 0:
                        raise SimulationError(
                            "non-physical step duration", group_index=gi,
                            detail=f"duration={duration!r}s",
                        )
                    pass_seconds += duration + BARRIER_CYCLES / freq
                    for k in pass_busy:
                        pass_busy[k] += step_busy[k]
                    pass_traffic.dram_read_bytes += m.dram_read_bytes
                    pass_traffic.dram_write_bytes += m.dram_write_bytes
                    pass_traffic.sram_bytes += m.sram_bytes
                    pass_traffic.noc_bytes += m.noc_bytes
                    pass_traffic.transpose_bytes += m.transpose_bytes
                    clock += duration * freq
                    if self.collect_trace and not warm:
                        events.append(
                            TraceEvent(
                                EventKind.BARRIER, gi, "group-switch",
                                cycles=BARRIER_CYCLES,
                                start_cycle=int(clock),
                            )
                        )
                    clock += BARRIER_CYCLES
                weight = 1 if not warm else schedule.repeat - 1
                total_seconds += pass_seconds * weight
                for k in busy:
                    busy[k] += pass_busy[k] * weight
                for attr in ("dram_read_bytes", "dram_write_bytes",
                             "sram_bytes", "noc_bytes", "transpose_bytes"):
                    setattr(
                        traffic,
                        attr,
                        getattr(traffic, attr)
                        + getattr(pass_traffic, attr) * weight,
                    )

            if not math.isfinite(total_seconds) or total_seconds < 0:
                raise SimulationError(
                    "non-physical total latency",
                    detail=f"total_seconds={total_seconds!r}",
                )
            # Every busy figure is already in (resource-saturated)
            # seconds, so utilization is busy time over wall-clock time.
            util = UtilizationReport.from_busy(busy, total_seconds)
            sim_span.set("total_ms", total_seconds * 1e3)
        return SimResult(
            total_seconds=total_seconds,
            utilization=util,
            traffic=traffic,
            num_groups=schedule.num_groups,
            events=events,
        )

    # ------------------------------------------------------------------

    def _steady_state_constants(self, schedule: Schedule) -> frozenset:
        """Constants kept resident across repeat iterations.

        Greedy largest-first packing into the residency pool (half the
        SRAM): big evks save the most DRAM traffic per resident byte of
        identical reuse frequency.
        """
        budget = int(self.config.sram_capacity_bytes * self.residency_fraction)
        sizes: Dict[int, int] = {}
        for step in schedule.steps:
            for uid, nbytes in step.metrics.constant_bytes.items():
                sizes[uid] = nbytes
        kept = set()
        used = 0
        for uid, nbytes in sorted(sizes.items(), key=lambda kv: -kv[1]):
            if used + nbytes <= budget:
                kept.add(uid)
                used += nbytes
        return frozenset(kept)

    def _simulate_step(
        self,
        group_index: int,
        step: ScheduledStep,
        mapping: GroupMapping,
        events: List[TraceEvent],
        extra_resident: frozenset = frozenset(),
        start_cycle: int = 0,
    ) -> tuple:
        cfg = self.config
        freq = cfg.frequency_ghz * 1e9
        plan = step.plan
        if extra_resident:
            _, m = plan.execution_seconds(
                resident_inputs=step.resident_inputs,
                resident_constants=set(step.resident_constants)
                | set(extra_resident),
                kept_outputs=step.kept_outputs,
                constant_share=self.constant_share,
            )
        else:
            m = step.metrics

        # PE pipeline: the slowest stage sets the pace.  PE busy time is
        # work-based (useful lane-cycles / lane capacity) so the reported
        # utilization directly reflects idle logic — specialized units on
        # baselines and under-allocated PEs on CROPHE alike.
        useful_lane_cycles = 0
        worst_stage = step.metrics.compute_cycles
        for op in plan.ops:
            if op.kind is OpKind.TRANSPOSE:
                continue
            useful_lane_cycles += op.total_work
            if self.collect_trace:
                pes = plan.pe_allocation.get(op.uid, 1)
                cyc = operator_cycles(op, pes, cfg.lanes_per_pe)
                placement = mapping.placements.get(op.uid)
                events.append(
                    TraceEvent(
                        EventKind.OP_EXECUTE, group_index, op.name,
                        cycles=cyc,
                        pes=placement.pes if placement else (),
                        start_cycle=start_cycle,
                    )
                )
        compute_seconds = worst_stage / freq

        # NoC: bytes x hops over aggregate link capacity.  Baselines get
        # an idealized NoC, exactly as the paper does when reproducing
        # them ("for simplicity we assume idealized NoC performance").
        if cfg.fu_mix is not None:
            noc_seconds = 0.0
        else:
            avg_hops = max(mapping.average_hops(), 1.0)
            link_bytes_per_s = self._noc.aggregate_bytes_per_cycle() * freq
            noc_seconds = m.noc_bytes * avg_hops / link_bytes_per_s
        # Memory queues.
        dram_seconds = self._hbm.access_seconds(m.dram_bytes)
        sram_seconds = self._sram.access_seconds(m.sram_bytes)
        tpu_seconds = self._tpu.transpose_seconds(m.transpose_bytes)

        duration = max(
            compute_seconds, noc_seconds, dram_seconds, sram_seconds,
            tpu_seconds,
        )
        busy = {
            "pe": useful_lane_cycles / (cfg.total_lanes * freq),
            "noc": noc_seconds,
            "sram": m.sram_bytes / cfg.sram_bytes_per_second,
            "dram": m.dram_bytes / cfg.dram_bytes_per_second,
            "tpu": m.transpose_bytes / self._tpu.bytes_per_second,
        }
        if self.collect_trace:
            self._emit_resource_events(
                group_index, events, m, start_cycle, freq,
                noc_seconds=noc_seconds, sram_seconds=sram_seconds,
                tpu_seconds=tpu_seconds,
            )
        if _METRICS.enabled:
            seconds_by_resource = {
                "pe": compute_seconds, "noc": noc_seconds,
                "dram": dram_seconds, "sram": sram_seconds,
                "tpu": tpu_seconds,
            }
            winner = dominant(seconds_by_resource, order=BOTTLENECK_ORDER)
            _METRICS.counter("sim.steps").inc()
            _METRICS.counter(f"sim.bottleneck.{winner}").inc()
            for res, sec in busy.items():
                _METRICS.counter(f"sim.busy_cycles.{res}").inc(
                    int(sec * freq)
                )
            if extra_resident:
                hits = len(
                    frozenset(step.metrics.constant_bytes) & extra_resident
                )
                if hits:
                    _METRICS.counter("sim.steady_constant_hits").inc(hits)
        return duration, busy, m

    def _emit_resource_events(
        self,
        group_index: int,
        events: List[TraceEvent],
        m,
        start_cycle: int,
        freq: float,
        noc_seconds: float,
        sram_seconds: float,
        tpu_seconds: float,
    ) -> None:
        """Append per-resource occupancy events for one step.

        One event per busy resource, stamped at the step start: the
        Perfetto export renders them as slices alongside the step's OP
        events, so a trace shows *why* each group takes as long as it
        does (the slowest slice is the limiter).
        """
        dram_total = m.dram_bytes
        dram_cycles = (
            self._hbm.access_seconds(dram_total) * freq if dram_total else 0.0
        )
        for kind, name, nbytes, cycles in (
            (EventKind.NOC_TRANSFER, "noc", m.noc_bytes,
             noc_seconds * freq),
            (EventKind.DRAM_READ, "dram-read", m.dram_read_bytes,
             dram_cycles * (m.dram_read_bytes / dram_total)
             if dram_total else 0.0),
            (EventKind.DRAM_WRITE, "dram-write", m.dram_write_bytes,
             dram_cycles * (m.dram_write_bytes / dram_total)
             if dram_total else 0.0),
            (EventKind.SRAM_ACCESS, "sram", m.sram_bytes,
             sram_seconds * freq),
            (EventKind.TRANSPOSE, "transpose", m.transpose_bytes,
             tpu_seconds * freq),
        ):
            if not nbytes:
                continue
            events.append(
                TraceEvent(
                    kind, group_index, name, bytes=int(nbytes),
                    cycles=int(cycles), start_cycle=start_cycle,
                )
            )
