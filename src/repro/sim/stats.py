"""Utilization and traffic statistics (Table IV / Figure 11 inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class UtilizationReport:
    """Resource busy-time fractions over a simulated execution."""

    pe: float = 0.0
    noc: float = 0.0
    sram_bw: float = 0.0
    dram_bw: float = 0.0
    transpose: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Display-label view of the utilization fields."""
        return {
            "PEs": self.pe,
            "NoC b/w": self.noc,
            "SRAM b/w": self.sram_bw,
            "DRAM b/w": self.dram_bw,
            "transpose": self.transpose,
        }


@dataclass
class TrafficReport:
    """Byte totals per memory level."""

    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    sram_bytes: int = 0
    noc_bytes: int = 0
    transpose_bytes: int = 0

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def add(self, other: "TrafficReport") -> None:
        """Accumulate another report into this one."""
        self.dram_read_bytes += other.dram_read_bytes
        self.dram_write_bytes += other.dram_write_bytes
        self.sram_bytes += other.sram_bytes
        self.noc_bytes += other.noc_bytes
        self.transpose_bytes += other.transpose_bytes
