"""Utilization and traffic statistics (Table IV / Figure 11 inputs).

This module also owns the **canonical bottleneck tie-break**: every
place that names "the limiting resource" — the simulation engine's
per-step winners, :mod:`repro.obs.attribution`, the cost model's
:class:`~repro.sched.cost_model.TimeBreakdown`, and the report
renderers — resolves ties through :data:`BOTTLENECK_PRECEDENCE` (via
:func:`bottleneck_order` / :func:`dominant_bottleneck`), so Table IV,
``schedule_bottleneck_profile``, and the obs tables can never disagree
on a tied group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: Canonical bottleneck-attribution precedence (ties go leftward):
#: compute first, then the interconnect, then the memory system, then
#: the transpose unit — the order the paper discusses limiters in.
BOTTLENECK_PRECEDENCE = ("pe", "noc", "dram", "sram", "transpose")

#: Domain-specific spellings of the canonical resource names.  The
#: engine says ``tpu``, the cost model says ``compute``, utilization
#: reports say ``dram_bw``/``sram_bw`` — all one precedence.
RESOURCE_ALIASES = {
    "compute": "pe",
    "tpu": "transpose",
    "dram_bw": "dram",
    "sram_bw": "sram",
}


def canonical_resource(name: str) -> str:
    """Map a domain spelling onto its canonical resource name."""
    return RESOURCE_ALIASES.get(name, name)


def bottleneck_order(names: Sequence[str]) -> Tuple[str, ...]:
    """Order resource spellings by the canonical precedence.

    Names whose canonical form is not in :data:`BOTTLENECK_PRECEDENCE`
    sort after every known resource, keeping their given order — the
    sort is stable, so callers with exotic extra keys stay
    deterministic too.
    """
    known = {r: i for i, r in enumerate(BOTTLENECK_PRECEDENCE)}
    return tuple(sorted(
        names,
        key=lambda n: known.get(canonical_resource(n), len(known)),
    ))


def dominant_bottleneck(values: Mapping[str, float]) -> str:
    """:func:`dominant` under the canonical bottleneck precedence."""
    return dominant(values, order=bottleneck_order(tuple(values)))


def dominant(
    values: Mapping[str, float],
    order: Optional[Sequence[str]] = None,
) -> str:
    """The argmax key of ``values`` with deterministic tie-breaking.

    Ties go to the key earliest in ``order`` (or insertion order when
    no order is given), so bottleneck attribution is stable across runs
    and dict-construction details.  An empty mapping is a programming
    error (callers always have at least one resource) and raises
    :class:`~repro.resilience.errors.InvariantViolation`.
    """
    if not values:
        from repro.resilience.errors import InvariantViolation

        raise InvariantViolation(
            "repro.sim.stats.dominant", "no candidates to attribute"
        )
    keys = [k for k in (order or values) if k in values]
    # Keys outside the requested order still participate, after it.
    keys += [k for k in values if k not in keys]
    best = keys[0]
    for key in keys[1:]:
        if values[key] > values[best]:
            best = key
    return best


@dataclass
class UtilizationReport:
    """Resource busy-time fractions over a simulated execution."""

    pe: float = 0.0
    noc: float = 0.0
    sram_bw: float = 0.0
    dram_bw: float = 0.0
    transpose: float = 0.0

    #: Attribution precedence, derived from the canonical
    #: :data:`BOTTLENECK_PRECEDENCE` so every table tie-breaks alike.
    FIELD_ORDER = bottleneck_order(
        ("pe", "noc", "sram_bw", "dram_bw", "transpose")
    )

    @classmethod
    def from_busy(
        cls, busy: Mapping[str, float], total_seconds: float
    ) -> "UtilizationReport":
        """Build a report from per-resource busy seconds and wall time.

        ``busy`` uses the engine's short keys (``pe``/``noc``/``sram``/
        ``dram``/``tpu``); fractions are clamped to [0, 1] and are zero
        for a zero-length execution.
        """

        def frac(key: str) -> float:
            if not total_seconds:
                return 0.0
            return min(1.0, busy.get(key, 0.0) / total_seconds)

        return cls(
            pe=frac("pe"),
            noc=frac("noc"),
            sram_bw=frac("sram"),
            dram_bw=frac("dram"),
            transpose=frac("tpu"),
        )

    def as_dict(self) -> Dict[str, float]:
        """Display-label view of the utilization fields."""
        return {
            "PEs": self.pe,
            "NoC b/w": self.noc,
            "SRAM b/w": self.sram_bw,
            "DRAM b/w": self.dram_bw,
            "transpose": self.transpose,
        }

    def dominant(self) -> str:
        """Field name of the busiest resource (stable tie-breaking)."""
        return dominant(
            {
                "pe": self.pe,
                "noc": self.noc,
                "sram_bw": self.sram_bw,
                "dram_bw": self.dram_bw,
                "transpose": self.transpose,
            },
            order=self.FIELD_ORDER,
        )


@dataclass
class TrafficReport:
    """Byte totals per memory level."""

    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    sram_bytes: int = 0
    noc_bytes: int = 0
    transpose_bytes: int = 0

    #: Tie order for traffic *volume* (outer memory level first) — a
    #: different question from bottleneck attribution, so deliberately
    #: not :data:`BOTTLENECK_PRECEDENCE`.
    FIELD_ORDER = ("dram", "sram", "noc", "transpose")

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    def add(self, other: "TrafficReport") -> None:
        """Accumulate another report into this one."""
        self.dram_read_bytes += other.dram_read_bytes
        self.dram_write_bytes += other.dram_write_bytes
        self.sram_bytes += other.sram_bytes
        self.noc_bytes += other.noc_bytes
        self.transpose_bytes += other.transpose_bytes

    def dominant(self) -> str:
        """Memory level carrying the most bytes (stable tie-breaking)."""
        return dominant(
            {
                "dram": self.dram_bytes,
                "sram": self.sram_bytes,
                "noc": self.noc_bytes,
                "transpose": self.transpose_bytes,
            },
            order=self.FIELD_ORDER,
        )
