"""Execution trace records.

The mapper's output drives the simulator through these records; they are
also serializable for offline inspection (the paper's "trace files").
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, Tuple


class EventKind(enum.Enum):
    OP_EXECUTE = "op"
    NOC_TRANSFER = "noc"
    DRAM_READ = "dram_rd"
    DRAM_WRITE = "dram_wr"
    SRAM_ACCESS = "sram"
    TRANSPOSE = "transpose"
    BARRIER = "barrier"


@dataclass
class TraceEvent:
    """One simulated event: what, where, and how much."""

    kind: EventKind
    group: int
    name: str
    bytes: int = 0
    cycles: int = 0
    pes: Tuple[int, ...] = ()
    hops: int = 0

    def to_json(self) -> str:
        """One-line JSON rendering of the event."""
        d = asdict(self)
        d["kind"] = self.kind.value
        return json.dumps(d)


def dump_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write a trace as JSON lines."""
    with open(path, "w") as f:
        for e in events:
            f.write(e.to_json() + "\n")


def load_trace(path: str) -> List[TraceEvent]:
    """Read a JSON-lines trace written by :func:`dump_trace`."""
    out = []
    with open(path) as f:
        for line in f:
            d = json.loads(line)
            d["kind"] = EventKind(d["kind"])
            d["pes"] = tuple(d["pes"])
            out.append(TraceEvent(**d))
    return out
