"""Execution trace records.

The mapper's output drives the simulator through these records; they are
also serializable for offline inspection (the paper's "trace files").

Reading is hardened for traces of unknown provenance: malformed lines,
unknown event kinds, and missing/unexpected fields raise a typed
:class:`~repro.resilience.errors.TraceError` naming the file and line
number.  :func:`iter_trace` streams events one line at a time so a
multi-gigabyte trace never needs full materialization;
:func:`load_trace` keeps the historical list-returning contract.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.resilience.errors import TraceError


class EventKind(enum.Enum):
    OP_EXECUTE = "op"
    NOC_TRANSFER = "noc"
    DRAM_READ = "dram_rd"
    DRAM_WRITE = "dram_wr"
    SRAM_ACCESS = "sram"
    TRANSPOSE = "transpose"
    BARRIER = "barrier"


@dataclass
class TraceEvent:
    """One simulated event: what, where, and how much.

    ``start_cycle`` places the event on the simulated timeline (the
    engine stamps it when collecting a trace); older traces without the
    field load with 0 and exporters fall back to sequential placement.
    """

    kind: EventKind
    group: int
    name: str
    bytes: int = 0
    cycles: int = 0
    pes: Tuple[int, ...] = ()
    hops: int = 0
    start_cycle: int = 0

    def to_json(self) -> str:
        """One-line JSON rendering of the event."""
        d = asdict(self)
        d["kind"] = self.kind.value
        return json.dumps(d)


def dump_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write a trace as JSON lines."""
    with open(path, "w") as f:
        for e in events:
            f.write(e.to_json() + "\n")


#: Fields a serialized event may carry beyond the required three.
_OPTIONAL_FIELDS = ("bytes", "cycles", "hops", "start_cycle")
_KNOWN_FIELDS = frozenset(
    ("kind", "group", "name", "pes") + _OPTIONAL_FIELDS
)


def _parse_event(d: object, path: str, lineno: int) -> TraceEvent:
    """Build one event from a decoded line, or raise :class:`TraceError`."""
    if not isinstance(d, dict):
        raise TraceError(
            f"trace record must be a JSON object, got {type(d).__name__}",
            path=path, line=lineno,
        )
    unknown = set(d) - _KNOWN_FIELDS
    if unknown:
        raise TraceError(
            f"unexpected trace field(s): {', '.join(sorted(unknown))}",
            path=path, line=lineno,
        )
    for required in ("kind", "group", "name"):
        if required not in d:
            raise TraceError(
                f"trace record missing required field {required!r}",
                path=path, line=lineno,
            )
    try:
        kind = EventKind(d["kind"])
    except ValueError:
        known = ", ".join(k.value for k in EventKind)
        raise TraceError(
            f"unknown event kind {d['kind']!r} (known: {known})",
            path=path, line=lineno,
        ) from None
    try:
        return TraceEvent(
            kind=kind,
            group=int(d["group"]),
            name=str(d["name"]),
            bytes=int(d.get("bytes", 0)),
            cycles=int(d.get("cycles", 0)),
            pes=tuple(int(p) for p in d.get("pes", ())),
            hops=int(d.get("hops", 0)),
            start_cycle=int(d.get("start_cycle", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise TraceError(
            f"trace field has the wrong type: {exc}",
            path=path, line=lineno,
        ) from exc


def iter_trace(path: str) -> Iterator[TraceEvent]:
    """Stream a JSON-lines trace one event at a time.

    Blank lines are skipped; anything else that fails to parse raises
    :class:`~repro.resilience.errors.TraceError` with the file and
    1-based line number.
    """
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            if not line.strip():
                continue
            try:
                decoded = json.loads(line)
            except ValueError as exc:
                raise TraceError(
                    f"malformed JSON: {exc}", path=path, line=lineno
                ) from exc
            yield _parse_event(decoded, path, lineno)


def load_trace(path: str) -> List[TraceEvent]:
    """Read a JSON-lines trace written by :func:`dump_trace`."""
    return list(iter_trace(path))
