"""Human-readable reports over schedules and simulation results.

Pretty-printers used by the examples and the experiment runner: a group
table (operators, PE allocation, buffer, bottleneck), a traffic summary,
and a side-by-side comparison of two runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.config import HardwareConfig
from repro.hw.memory import HbmMemory, SramBuffer
from repro.sched.dataflow import Schedule, ScheduledStep
from repro.sim.engine import SimResult
from repro.sim.stats import dominant_bottleneck


def _bottleneck(step: ScheduledStep, hw: HardwareConfig) -> str:
    """Name the resource that paces a step."""
    m = step.metrics
    freq = hw.frequency_ghz * 1e9
    candidates = {
        "compute": m.compute_cycles / freq,
        "dram": HbmMemory.for_config(hw).access_seconds(m.dram_bytes),
        "sram": SramBuffer.for_config(hw).access_seconds(m.sram_bytes),
    }
    return dominant_bottleneck(candidates)


def schedule_table(
    schedule: Schedule,
    hw: HardwareConfig,
    max_rows: int = 20,
) -> str:
    """One row per scheduled group."""
    lines = [
        f"{'#':>4s} {'ops':>4s} {'operators':40s} {'buf MB':>8s}"
        f" {'us':>9s} {'bound':>8s}"
    ]
    for i, step in enumerate(schedule.steps[:max_rows]):
        kinds = ",".join(op.kind.value for op in step.plan.ops)
        if len(kinds) > 38:
            kinds = kinds[:35] + "..."
        lines.append(
            f"{i:4d} {len(step.plan.ops):4d} {kinds:40s}"
            f" {step.plan.metrics.buffer_bytes / 2**20:8.2f}"
            f" {step.seconds * 1e6:9.2f} {_bottleneck(step, hw):>8s}"
        )
    if len(schedule.steps) > max_rows:
        lines.append(f"  ... {len(schedule.steps) - max_rows} more groups")
    return "\n".join(lines)


def simulation_summary(result: SimResult, label: str = "run") -> str:
    """Traffic + utilization one-pager."""
    t = result.traffic
    u = result.utilization
    lines = [
        f"=== {label} ===",
        f"  time          : {result.total_ms:10.3f} ms"
        f"  ({result.num_groups} groups)",
        f"  DRAM traffic  : {t.dram_bytes / 2**30:10.3f} GB"
        f"  (rd {t.dram_read_bytes / 2**30:.2f} / wr"
        f" {t.dram_write_bytes / 2**30:.2f})",
        f"  SRAM traffic  : {t.sram_bytes / 2**30:10.3f} GB",
        f"  NoC traffic   : {t.noc_bytes / 2**30:10.3f} GB",
        "  utilization   : "
        + "  ".join(f"{k}={v:.0%}" for k, v in u.as_dict().items()),
    ]
    return "\n".join(lines)


def comparison_table(
    results: Sequence[SimResult], labels: Sequence[str]
) -> str:
    """Side-by-side comparison, first result as the reference."""
    if len(results) != len(labels):
        raise ValueError("one label per result required")
    if not results:
        return "(no results)"
    ref = results[0].total_seconds
    lines = [
        f"{'design':20s}{'ms':>10s}{'speedup':>9s}{'DRAM GB':>9s}"
        f"{'PE util':>9s}"
    ]
    for result, label in zip(results, labels):
        lines.append(
            f"{label:20s}{result.total_ms:10.3f}"
            f"{ref / result.total_seconds:8.2f}x"
            f"{result.traffic.dram_bytes / 2**30:9.2f}"
            f"{result.utilization.pe:8.1%}"
        )
    return "\n".join(lines)
