"""Event-driven performance simulator.

Consumes a :class:`~repro.sched.dataflow.Schedule` plus per-group
mappings and simulates execution group by group: operators within a
group run as pipeline stages with NoC link contention from the mapping's
hop distances, memory traffic queues on SRAM/DRAM bandwidth, and group
switches are fully synchronous barriers (Section IV-A).  Produces the
utilization and traffic statistics behind Table IV and Figure 11.

This event-driven engine substitutes the paper's RTL-matched
cycle-accurate simulator; see DESIGN.md for why the group-level
bottleneck interplay it captures is what drives the headline results.
"""

from repro.sim.engine import SimulationEngine, SimResult
from repro.sim.stats import TrafficReport, UtilizationReport
from repro.sim.report import comparison_table, schedule_table, simulation_summary
from repro.sim.trace import TraceEvent, dump_trace, load_trace

__all__ = [
    "SimulationEngine",
    "SimResult",
    "UtilizationReport",
    "TrafficReport",
    "comparison_table",
    "schedule_table",
    "simulation_summary",
    "TraceEvent",
    "dump_trace",
    "load_trace",
]
