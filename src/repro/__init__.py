"""CROPHE reproduction: cross-operator dataflow optimization for FHE
accelerators (HPCA 2026).

Subpackages:

* :mod:`repro.fhe` -- functional RNS-CKKS library (the executable spec).
* :mod:`repro.ir` -- operator-graph IR and CKKS primitive builders.
* :mod:`repro.hw` -- hardware configurations and models (Table I/II).
* :mod:`repro.sched` -- the CROPHE scheduling framework (Section V).
* :mod:`repro.sim` -- group-level performance simulator.
* :mod:`repro.baselines` -- BTS/ARK/SHARP/CraterLake + MAD scheduling.
* :mod:`repro.workloads` -- bootstrapping, HELR, ResNet-20/110 graphs.
* :mod:`repro.experiments` -- regenerates every table and figure.
"""

__version__ = "1.0.0"
