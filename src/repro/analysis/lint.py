"""Repository lint: typed-error rules (L001-L002) and the determinism
rules (D001-D005) guarding the byte-identity contract.

``assert`` statements vanish under ``python -O``, so a library invariant
guarded by one silently stops being checked; an untyped
``raise ValueError(...)`` denies callers the chance to branch on the
failure class.  Library code raises :class:`~repro.resilience.errors.
ReproError` subclasses instead (``InvariantViolation`` for internal
invariants).

The D* rules are the static guardrails for the repo's hardest-won
invariant — same seed, byte-identical artifacts: unseeded random
sources (D001), wall-clock values flowing into serialized artifacts
(D002), iteration over unordered sets (D003), unsorted directory
listings (D004), and completion-order thread-pool consumption (D005).
CI enforces the same property end to end with ``cmp``; the lint catches
the regression at review time instead of on a flaky re-run.

The pass is a plain ``ast`` walk — no third-party linter needed — and
fails **on new errors only**: existing findings are recorded in a
baseline file as ``path:rule:count`` lines (counts per file/rule are
robust to line shifts, unlike line-number pins), and the gate trips only
when a file/rule count exceeds its baseline.  ``--update-baseline``
accepts shrinking counts (auto-verified; it refuses to grow any entry),
``--write-baseline`` force-rewrites after a deliberately accepted
regression.

Run it as ``python -m repro.analysis.lint src`` (see ``make lint``).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    EXIT_VERIFY,
    DiagnosticReport,
    reports_document,
)

#: Builtin exception types library code must not raise directly.
#: ``NotImplementedError`` (abstract hooks), ``KeyError``/``IndexError``
#: (mapping protocol), and ``StopIteration`` stay legal: they *are* the
#: typed contract of the construct involved.
BANNED_RAISES = frozenset(
    {"Exception", "ValueError", "TypeError", "RuntimeError",
     "AssertionError", "ArithmeticError", "OSError", "IOError"}
)

#: Default baseline, resolved relative to this package so the gate works
#: from any working directory.
DEFAULT_BASELINE = Path(__file__).with_name("lint_baseline.txt")

BaselineKey = Tuple[str, str]  # (posix path, rule id)


#: Module-level ``random.*`` draws D001 flags (global-state entropy).
_RANDOM_DRAWS = frozenset(
    {"random", "randint", "randrange", "choice", "choices", "shuffle",
     "sample", "uniform", "gauss", "normalvariate", "triangular",
     "betavariate", "expovariate", "gammavariate", "lognormvariate",
     "vonmisesvariate", "paretovariate", "weibullvariate",
     "getrandbits", "randbytes"}
)

#: Zero-argument RNG constructors D001 flags (OS-entropy seeding).
_RNG_CONSTRUCTORS = frozenset({"Random", "default_rng", "RandomState"})

#: Wall-clock reads D002 flags when the same function serializes JSON.
_WALL_CLOCK = frozenset({"time", "time_ns", "now", "utcnow", "today"})

#: Directory enumerations D004 requires to be wrapped in ``sorted``.
_LISTING_MODULE_CALLS = frozenset(
    {("os", "listdir"), ("os", "scandir"), ("glob", "glob"),
     ("glob", "iglob")}
)
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Completion-order pool iteration D005 bans outright.
_UNORDERED_POOL = frozenset({"as_completed", "imap_unordered"})


def _banned_name(node: ast.Raise) -> Optional[str]:
    """The banned builtin a ``raise`` targets, or None when legal."""
    exc = node.exc
    if exc is None:  # bare re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name) and exc.id in BANNED_RAISES:
        return exc.id
    return None


def _dotted(func: ast.expr) -> Tuple[str, ...]:
    """A call target as a dotted-name tuple (best effort).

    ``np.random.choice`` -> ``("np", "random", "choice")``; anything
    not a plain name chain contributes an empty leading segment.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("")
    return tuple(reversed(parts))


def _is_sorted_wrapped(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` is a direct argument of a ``sorted(...)`` call."""
    parent = parents.get(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
        and node in parent.args
    )


def _check_unseeded_random(
    node: ast.Call, path: str, report: DiagnosticReport
) -> None:
    """D001: module-level random draws and zero-arg RNG constructors."""
    dotted = _dotted(node.func)
    if len(dotted) == 2 and dotted[0] == "random" and dotted[1] in _RANDOM_DRAWS:
        report.emit(
            "D001", f"{path}:{node.lineno}",
            f"module-level random.{dotted[1]}() draws from global state",
        )
        return
    if (
        len(dotted) == 3
        and dotted[0] in ("np", "numpy")
        and dotted[1] == "random"
        and dotted[2] not in _RNG_CONSTRUCTORS | {"Generator", "SeedSequence"}
    ):
        report.emit(
            "D001", f"{path}:{node.lineno}",
            f"legacy {dotted[0]}.random.{dotted[2]}() draws from global "
            "state",
        )
        return
    if (
        dotted[-1] in _RNG_CONSTRUCTORS
        and not node.args
        and not node.keywords
    ):
        report.emit(
            "D001", f"{path}:{node.lineno}",
            f"{dotted[-1]}() without a seed draws from OS entropy",
        )


def _check_wall_clock_artifacts(
    tree: ast.Module, path: str, report: DiagnosticReport
) -> None:
    """D002: wall-clock reads in functions that also serialize JSON.

    A per-function heuristic: ``time.time()``/``datetime.now()`` in the
    same function body as ``json.dump(s)`` is the pattern that stamps
    run-dependent values into artifact bytes.
    """
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        clock_lines: List[int] = []
        dumps = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if len(dotted) >= 2 and dotted[-1] in _WALL_CLOCK and dotted[-2] in (
                "time", "datetime", "date"
            ):
                clock_lines.append(node.lineno)
            if len(dotted) == 2 and dotted[0] == "json" and dotted[1] in (
                "dump", "dumps"
            ):
                dumps = True
        if dumps:
            for lineno in clock_lines:
                report.emit(
                    "D002", f"{path}:{lineno}",
                    f"wall-clock read in {func.name}(), which also "
                    "serializes JSON — run-dependent bytes in artifacts",
                )


def _iter_targets(tree: ast.Module) -> Iterable[ast.expr]:
    """Every expression something iterates over (for loops and
    comprehensions)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield gen.iter

def _check_set_iteration(
    tree: ast.Module, path: str, report: DiagnosticReport
) -> None:
    """D003: iterating a set display / set() call in hash order."""
    for target in _iter_targets(tree):
        is_set = isinstance(target, ast.Set) or (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Name)
            and target.func.id in ("set", "frozenset")
        )
        if is_set:
            report.emit(
                "D003", f"{path}:{target.lineno}",
                "iterates a set in hash order; wrap it in sorted(...)",
            )


def _check_unsorted_listing(
    node: ast.Call,
    path: str,
    parents: Dict[ast.AST, ast.AST],
    report: DiagnosticReport,
) -> None:
    """D004: directory enumeration not directly wrapped in sorted()."""
    dotted = _dotted(node.func)
    is_listing = (
        len(dotted) == 2 and (dotted[0], dotted[1]) in _LISTING_MODULE_CALLS
    ) or (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _LISTING_METHODS
        and len(dotted) >= 2
    )
    if is_listing and not _is_sorted_wrapped(node, parents):
        report.emit(
            "D004", f"{path}:{node.lineno}",
            f"{'.'.join(p for p in dotted if p)}() yields filesystem "
            "order; wrap the call in sorted(...)",
        )


def _check_unordered_pool(
    node: ast.Call, path: str, report: DiagnosticReport
) -> None:
    """D005: completion-order result consumption."""
    dotted = _dotted(node.func)
    if dotted[-1] in _UNORDERED_POOL:
        report.emit(
            "D005", f"{path}:{node.lineno}",
            f"{dotted[-1]}() yields results in completion order; "
            "consume futures in submission order instead",
        )


def lint_source(
    source: str, path: str, report: DiagnosticReport
) -> None:
    """Emit L001/L002 and D001-D005 findings for one module's source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        # A file the lint pass cannot parse would not import either;
        # surface it as an untyped failure at the offending line.
        report.emit(
            "L002", f"{path}:{exc.lineno or 0}",
            f"unparseable module: {exc.msg}",
        )
        return
    parents: Dict[ast.AST, ast.AST] = {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            report.emit(
                "L001", f"{path}:{node.lineno}",
                "bare assert in library code",
            )
        elif isinstance(node, ast.Raise):
            name = _banned_name(node)
            if name is not None:
                report.emit(
                    "L002", f"{path}:{node.lineno}",
                    f"raises builtin {name}",
                )
        elif isinstance(node, ast.Call):
            _check_unseeded_random(node, path, report)
            _check_unsorted_listing(node, path, parents, report)
            _check_unordered_pool(node, path, report)
    _check_wall_clock_artifacts(tree, path, report)
    _check_set_iteration(tree, path, report)


def _python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Sequence[str]) -> DiagnosticReport:
    """Lint every ``.py`` file under the given paths."""
    report = DiagnosticReport(pass_name="lint")
    for path in _python_files(paths):
        lint_source(
            path.read_text(encoding="utf-8"), path.as_posix(), report
        )
    return report


# ----------------------------------------------------------------------
# Baseline bookkeeping
# ----------------------------------------------------------------------

def report_counts(report: DiagnosticReport) -> Dict[BaselineKey, int]:
    """Findings per (file, rule) — the unit the baseline tracks."""
    counts: Dict[BaselineKey, int] = {}
    for d in report.diagnostics:
        file = d.location.rsplit(":", 1)[0]
        key = (file, d.rule)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[BaselineKey, int]:
    """Parse a baseline file (missing file = empty baseline)."""
    counts: Dict[BaselineKey, int] = {}
    if not path.exists():
        return counts
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        file, rule, count = line.rsplit(":", 2)
        counts[(file, rule)] = int(count)
    return counts


def write_baseline(path: Path, counts: Dict[BaselineKey, int]) -> None:
    """Serialize accepted finding counts as ``path:rule:count`` lines."""
    lines = [
        "# repro.analysis.lint baseline: path:rule:count",
        "# Regenerate with: python -m repro.analysis.lint src --write-baseline",
    ]
    lines.extend(
        f"{file}:{rule}:{count}"
        for (file, rule), count in sorted(counts.items())
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def regressions(
    current: Dict[BaselineKey, int], baseline: Dict[BaselineKey, int]
) -> Dict[BaselineKey, Tuple[int, int]]:
    """Keys whose count grew past the baseline: key -> (now, allowed)."""
    return {
        key: (count, baseline.get(key, 0))
        for key, count in sorted(current.items())
        if count > baseline.get(key, 0)
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit 0 when no (file, rule) count exceeds the baseline,
    :data:`~repro.analysis.diagnostics.EXIT_VERIFY` otherwise — the
    same code the runner's ``--verify`` and ``python -m repro.analysis``
    use, so CI branches on one value.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Typed-error and determinism lint for library code "
        "(fails on new findings only).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline file of accepted findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="force-rewrite the baseline from the current findings and "
        "exit (the escape hatch that may grow entries — use "
        "--update-baseline for routine cleanups)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="shrink the baseline to the current findings and exit; "
        "refuses to grow any entry (auto-verified: baselines never "
        "grow silently)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the runner-compatible verification JSON document",
    )
    args = parser.parse_args(argv)

    report = lint_paths(args.paths)
    current = report_counts(report)

    if args.write_baseline:
        write_baseline(args.baseline, current)
        print(
            f"baseline written: {args.baseline} "
            f"({sum(current.values())} finding(s) accepted)"
        )
        return 0

    baseline = load_baseline(args.baseline)
    if args.update_baseline:
        grown = regressions(current, baseline)
        if grown:
            for (file, rule), (now, allowed) in grown.items():
                print(
                    f"refusing to grow baseline: {file}:{rule} "
                    f"{allowed} -> {now}"
                )
            print(
                "fix the new findings or use --write-baseline to "
                "accept them deliberately"
            )
            return EXIT_VERIFY
        write_baseline(args.baseline, current)
        dropped = sum(
            count - current.get(key, 0)
            for key, count in baseline.items()
            if count > current.get(key, 0)
        )
        print(
            f"baseline updated: {args.baseline} "
            f"({sum(current.values())} finding(s) accepted, "
            f"{dropped} retired)"
        )
        return 0

    regressed = regressions(current, baseline)
    fresh = DiagnosticReport(pass_name="lint")
    for d in report.diagnostics:
        file = d.location.rsplit(":", 1)[0]
        if (file, d.rule) in regressed:
            fresh.diagnostics.append(d)

    if args.json:
        print(json.dumps(reports_document([fresh]), indent=2))
    else:
        print(fresh.render_text())
        suppressed = sum(current.values()) - len(fresh.diagnostics)
        if suppressed:
            print(f"({suppressed} pre-existing finding(s) under baseline)")
    return EXIT_VERIFY if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
