"""Repository lint (rules L001-L002): ban bare ``assert`` and untyped
``raise`` in library code.

``assert`` statements vanish under ``python -O``, so a library invariant
guarded by one silently stops being checked; an untyped
``raise ValueError(...)`` denies callers the chance to branch on the
failure class.  Library code raises :class:`~repro.resilience.errors.
ReproError` subclasses instead (``InvariantViolation`` for internal
invariants).

The pass is a plain ``ast`` walk — no third-party linter needed — and
fails **on new errors only**: existing findings are recorded in a
baseline file as ``path:rule:count`` lines (counts per file/rule are
robust to line shifts, unlike line-number pins), and the gate trips only
when a file/rule count exceeds its baseline.  Regenerate the baseline
with ``--write-baseline`` after deliberate cleanups.

Run it as ``python -m repro.analysis.lint src`` (see ``make lint``).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport

#: Builtin exception types library code must not raise directly.
#: ``NotImplementedError`` (abstract hooks), ``KeyError``/``IndexError``
#: (mapping protocol), and ``StopIteration`` stay legal: they *are* the
#: typed contract of the construct involved.
BANNED_RAISES = frozenset(
    {"Exception", "ValueError", "TypeError", "RuntimeError",
     "AssertionError", "ArithmeticError", "OSError", "IOError"}
)

#: Default baseline, resolved relative to this package so the gate works
#: from any working directory.
DEFAULT_BASELINE = Path(__file__).with_name("lint_baseline.txt")

BaselineKey = Tuple[str, str]  # (posix path, rule id)


def _banned_name(node: ast.Raise) -> Optional[str]:
    """The banned builtin a ``raise`` targets, or None when legal."""
    exc = node.exc
    if exc is None:  # bare re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name) and exc.id in BANNED_RAISES:
        return exc.id
    return None


def lint_source(
    source: str, path: str, report: DiagnosticReport
) -> None:
    """Emit L001/L002 findings for one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        # A file the lint pass cannot parse would not import either;
        # surface it as an untyped failure at the offending line.
        report.emit(
            "L002", f"{path}:{exc.lineno or 0}",
            f"unparseable module: {exc.msg}",
        )
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            report.emit(
                "L001", f"{path}:{node.lineno}",
                "bare assert in library code",
            )
        elif isinstance(node, ast.Raise):
            name = _banned_name(node)
            if name is not None:
                report.emit(
                    "L002", f"{path}:{node.lineno}",
                    f"raises builtin {name}",
                )


def _python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Sequence[str]) -> DiagnosticReport:
    """Lint every ``.py`` file under the given paths."""
    report = DiagnosticReport(pass_name="lint")
    for path in _python_files(paths):
        lint_source(
            path.read_text(encoding="utf-8"), path.as_posix(), report
        )
    return report


# ----------------------------------------------------------------------
# Baseline bookkeeping
# ----------------------------------------------------------------------

def report_counts(report: DiagnosticReport) -> Dict[BaselineKey, int]:
    """Findings per (file, rule) — the unit the baseline tracks."""
    counts: Dict[BaselineKey, int] = {}
    for d in report.diagnostics:
        file = d.location.rsplit(":", 1)[0]
        key = (file, d.rule)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[BaselineKey, int]:
    """Parse a baseline file (missing file = empty baseline)."""
    counts: Dict[BaselineKey, int] = {}
    if not path.exists():
        return counts
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        file, rule, count = line.rsplit(":", 2)
        counts[(file, rule)] = int(count)
    return counts


def write_baseline(path: Path, counts: Dict[BaselineKey, int]) -> None:
    """Serialize accepted finding counts as ``path:rule:count`` lines."""
    lines = [
        "# repro.analysis.lint baseline: path:rule:count",
        "# Regenerate with: python -m repro.analysis.lint src --write-baseline",
    ]
    lines.extend(
        f"{file}:{rule}:{count}"
        for (file, rule), count in sorted(counts.items())
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def regressions(
    current: Dict[BaselineKey, int], baseline: Dict[BaselineKey, int]
) -> Dict[BaselineKey, Tuple[int, int]]:
    """Keys whose count grew past the baseline: key -> (now, allowed)."""
    return {
        key: (count, baseline.get(key, 0))
        for key, count in sorted(current.items())
        if count > baseline.get(key, 0)
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Ban bare assert / untyped raise in library code "
        "(fails on new findings only).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline file of accepted findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    report = lint_paths(args.paths)
    current = report_counts(report)

    if args.write_baseline:
        write_baseline(args.baseline, current)
        print(
            f"baseline written: {args.baseline} "
            f"({sum(current.values())} finding(s) accepted)"
        )
        return 0

    baseline = load_baseline(args.baseline)
    regressed = regressions(current, baseline)
    fresh = DiagnosticReport(pass_name="lint")
    for d in report.diagnostics:
        file = d.location.rsplit(":", 1)[0]
        if (file, d.rule) in regressed:
            fresh.diagnostics.append(d)

    if args.json:
        print(fresh.to_json())
    else:
        print(fresh.render_text())
        suppressed = sum(current.values()) - len(fresh.diagnostics)
        if suppressed:
            print(f"({suppressed} pre-existing finding(s) under baseline)")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
