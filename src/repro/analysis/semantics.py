"""CKKS semantic verification (rules C001-C006).

In this IR the limb dimension *is* the level bookkeeping: an RNS-CKKS
ciphertext at level ``l`` carries ``l + 1`` limb rows, a rescale drops
exactly one row, and only base conversion (BConv) may extend the basis.
The pass therefore verifies per-operator limb/slot agreement (C001), a
conservative limb-budget walk over the graph — element-wise operators
may route/concatenate rows but never mint them (C002), no polynomial may
reach zero limbs, i.e. a negative level (C003) — four-step NTT split
consistency (C004), evk/digit agreement on key-switch inner products
(C005), and the one-limb-drop law of rescale corrections (C006).

The pass runs without executing anything and tolerates corrupt graphs;
run :func:`~repro.analysis.graph_verify.verify_graph` first for the
structural rules.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import DiagnosticReport
from repro.fhe.params import CKKSParams
from repro.ir.graph import OperatorGraph
from repro.ir.operators import Operator, OpKind
from repro.ir.tensors import DataTensor, TensorKind

#: Tensor kinds laid out as (limbs, N) polynomial matrices.
_POLY_LIKE = (TensorKind.POLY, TensorKind.EXTERNAL, TensorKind.PLAINTEXT)


def _is_poly_like(t: DataTensor) -> bool:
    return t.kind in _POLY_LIKE


def _rows(t: DataTensor) -> int:
    """Limb rows of a polynomial-shaped tensor."""
    return t.shape[0] if len(t.shape) == 2 else 0


def _cols(t: DataTensor) -> int:
    """Slot dimension of a polynomial-shaped tensor."""
    return t.shape[-1] if t.shape else 0


def _loc(op: Operator) -> str:
    return f"op {op.name} ({op.kind.value})"


def _check_poly_output(
    op: Operator, expected_rows: int, report: DiagnosticReport
) -> None:
    """Every output must be a (expected_rows, N) polynomial."""
    for t in op.outputs:
        if not _is_poly_like(t):
            report.emit(
                "C001", _loc(op),
                f"output {t.name} has kind {t.kind.value}, expected a "
                "polynomial",
            )
            continue
        if _rows(t) != expected_rows or _cols(t) != op.n:
            report.emit(
                "C001", _loc(op),
                f"output {t.name} has shape {t.shape}, expected "
                f"({expected_rows}, {op.n})",
            )


def _poly_inputs(op: Operator) -> list:
    return [t for t in op.inputs if _is_poly_like(t)]


def _check_slots(op: Operator, report: DiagnosticReport) -> None:
    for t in _poly_inputs(op):
        if _cols(t) != op.n:
            report.emit(
                "C001", _loc(op),
                f"input {t.name} has slot dimension {_cols(t)}, "
                f"operator declares N={op.n}",
            )


def _check_elementwise(op: Operator, report: DiagnosticReport) -> None:
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    # C002: element-wise operators route or combine limb rows; the
    # output basis can at most concatenate what the inputs carry
    # (e.g. the ModUp extend op), never exceed it.
    available = sum(_rows(t) for t in _poly_inputs(op))
    if _poly_inputs(op) and op.limbs > available:
        report.emit(
            "C002", _loc(op),
            f"writes {op.limbs} limb rows but its inputs carry only "
            f"{available}",
        )


def _check_automorphism(op: Operator, report: DiagnosticReport) -> None:
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    for t in _poly_inputs(op):
        if _rows(t) != op.limbs:
            report.emit(
                "C002", _loc(op),
                f"permutes {op.limbs} limb rows but input {t.name} "
                f"carries {_rows(t)} — an automorphism preserves the basis",
            )


def _check_ntt(op: Operator, report: DiagnosticReport) -> None:
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    polys = _poly_inputs(op)
    if polys and _rows(polys[0]) < op.limbs:
        report.emit(
            "C002", _loc(op),
            f"transforms {op.limbs} limb rows but input "
            f"{polys[0].name} carries only {_rows(polys[0])}",
        )
    valid_lengths = {op.n}
    if op.kind.is_ntt_phase:
        if op.n_split is None:
            report.emit("C004", _loc(op), "decomposed phase without n_split")
        else:
            n1, n2 = op.n_split
            if n1 * n2 != op.n:
                report.emit(
                    "C004", _loc(op),
                    f"n_split {op.n_split} does not multiply to N={op.n}",
                )
            valid_lengths |= {n1, n2}
    for t in op.inputs:
        if t.kind is TensorKind.TWIDDLE and t.shape[0] not in valid_lengths:
            report.emit(
                "C004", _loc(op),
                f"twiddle {t.name} has length {t.shape[0]}, expected one "
                f"of {sorted(valid_lengths)}",
            )


def _check_transpose(op: Operator, report: DiagnosticReport) -> None:
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    for t in _poly_inputs(op):
        if _rows(t) != op.limbs:
            report.emit(
                "C002", _loc(op),
                f"transposes {op.limbs} limb rows but input {t.name} "
                f"carries {_rows(t)}",
            )


def _check_bconv(op: Operator, report: DiagnosticReport) -> None:
    out_limbs = op.out_limbs if op.out_limbs is not None else op.limbs
    _check_poly_output(op, out_limbs, report)
    _check_slots(op, report)
    if out_limbs < 1 or op.limbs < 1:
        report.emit(
            "C003", _loc(op),
            f"base conversion from {op.limbs} to {out_limbs} limbs — "
            "the limb basis collapsed to nothing",
        )
    polys = _poly_inputs(op)
    if polys and _rows(polys[0]) < op.limbs:
        report.emit(
            "C002", _loc(op),
            f"converts {op.limbs} source limbs but input "
            f"{polys[0].name} carries only {_rows(polys[0])}",
        )
    for t in op.inputs:
        if t.kind is TensorKind.BCONV_MATRIX and t.shape != (out_limbs, op.limbs):
            report.emit(
                "C001", _loc(op),
                f"BConv matrix {t.name} has shape {t.shape}, expected "
                f"({out_limbs}, {op.limbs})",
            )


def _check_ksk_inp(op: Operator, report: DiagnosticReport) -> None:
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    evks = [t for t in op.inputs if t.kind is TensorKind.EVK]
    digits = _poly_inputs(op)
    if len(evks) != 1:
        report.emit(
            "C005", _loc(op),
            f"expected exactly one evk input, found {len(evks)}",
        )
    else:
        evk = evks[0]
        if len(evk.shape) != 4:
            report.emit(
                "C005", _loc(op),
                f"evk {evk.name} has shape {evk.shape}, expected "
                "(polys, beta, limbs, N)",
            )
        else:
            _, beta, limbs, n = evk.shape
            if beta != op.digits or limbs != op.limbs or n != op.n:
                report.emit(
                    "C005", _loc(op),
                    f"evk {evk.name} is (beta={beta}, limbs={limbs}, "
                    f"N={n}) but the inner product declares "
                    f"(beta={op.digits}, limbs={op.limbs}, N={op.n})",
                )
    if len(digits) != op.digits:
        report.emit(
            "C005", _loc(op),
            f"{len(digits)} digit polynomials for beta={op.digits}",
        )
    for t in digits:
        if _rows(t) != op.limbs:
            report.emit(
                "C005", _loc(op),
                f"digit {t.name} carries {_rows(t)} limb rows, the "
                f"extended basis holds {op.limbs}",
            )


def _check_key_switch(op: Operator, report: DiagnosticReport) -> None:
    """Coarse primitive-level key switch: (d, evk) -> (ks_b, ks_a)."""
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    if len(op.outputs) != 2:
        report.emit(
            "C005", _loc(op),
            f"coarse key switch writes {len(op.outputs)} tensors, "
            "expected the (ks_b, ks_a) pair",
        )
    for t in _poly_inputs(op):
        if _rows(t) != op.limbs:
            report.emit(
                "C002", _loc(op),
                f"switches {op.limbs} limb rows but input {t.name} "
                f"carries {_rows(t)} — a key switch preserves the level",
            )
    evks = [t for t in op.inputs if t.kind is TensorKind.EVK]
    if len(evks) != 1:
        report.emit(
            "C005", _loc(op),
            f"expected exactly one evk input, found {len(evks)}",
        )
    elif len(evks[0].shape) != 4 or evks[0].shape[1] != op.digits:
        report.emit(
            "C005", _loc(op),
            f"evk {evks[0].name} has shape {evks[0].shape}, expected "
            f"(polys, beta={op.digits}, limbs, N)",
        )


def _check_rot_batch(op: Operator, report: DiagnosticReport) -> None:
    """Coarse baby-rotation batch: rotations 1..n1-1 of one ciphertext."""
    _check_poly_output(op, op.limbs, report)
    _check_slots(op, report)
    expected = 2 * (op.digits - 1)
    if len(op.outputs) != expected:
        report.emit(
            "C005", _loc(op),
            f"baby-rotation batch over n1={op.digits} writes "
            f"{len(op.outputs)} tensors, expected {expected} (b, a) pairs",
        )
    for t in _poly_inputs(op):
        if _rows(t) != op.limbs:
            report.emit(
                "C002", _loc(op),
                f"rotates {op.limbs} limb rows but input {t.name} "
                f"carries {_rows(t)} — rotations preserve the level",
            )
    for t in op.inputs:
        if t.kind is TensorKind.EVK and len(t.shape) != 4:
            report.emit(
                "C005", _loc(op),
                f"evk {t.name} has shape {t.shape}, expected "
                "(polys, beta, limbs, N)",
            )


_KIND_CHECKS = {
    OpKind.EW_ADD: _check_elementwise,
    OpKind.EW_MUL: _check_elementwise,
    OpKind.EW_MULADD: _check_elementwise,
    OpKind.NTT: _check_ntt,
    OpKind.INTT: _check_ntt,
    OpKind.NTT_COL: _check_ntt,
    OpKind.NTT_ROW: _check_ntt,
    OpKind.INTT_COL: _check_ntt,
    OpKind.INTT_ROW: _check_ntt,
    OpKind.AUTOMORPHISM: _check_automorphism,
    OpKind.BCONV: _check_bconv,
    OpKind.KSK_INP: _check_ksk_inp,
    OpKind.TRANSPOSE: _check_transpose,
    OpKind.KEY_SWITCH: _check_key_switch,
    OpKind.ROT_BATCH: _check_rot_batch,
}


def _is_rescale_correction(op: Operator) -> bool:
    """The EW correction step of an HRescale lowering.

    The builder tags every rescale correction ``<...>rescale<...>.correct``
    (see :meth:`repro.ir.builders.GraphBuilder.rescale`); ModDown
    corrections carry ``moddown`` tags and keep their basis.
    """
    return (
        op.kind is OpKind.EW_MULADD
        and "rescale" in op.tag
        and op.tag.endswith(".correct")
    )


def verify_semantics(
    graph: OperatorGraph, params: Optional[CKKSParams] = None
) -> DiagnosticReport:
    """Run the CKKS semantic pass over one graph.

    With ``params`` the walk additionally pins every operator's slot
    dimension to the parameter set's ring degree.
    """
    report = DiagnosticReport(pass_name=f"semantics:{graph.name}")
    for op in graph.operators:
        check = _KIND_CHECKS.get(op.kind)
        if check is None:
            report.emit(
                "C001", _loc(op), f"unknown operator kind {op.kind!r}"
            )
            continue
        check(op, report)
        if params is not None and op.n != params.n:
            report.emit(
                "C001", _loc(op),
                f"operates on N={op.n} slots under a ring of degree "
                f"{params.n}",
            )
        # C003: the level-budget walk.  Every polynomial the operator
        # touches must carry at least one limb — a zero-row tensor is a
        # rescale/modswitch walk that went negative.
        for t in list(op.inputs) + list(op.outputs):
            if _is_poly_like(t) and _rows(t) < 1:
                report.emit(
                    "C003", _loc(op),
                    f"polynomial {t.name} carries {_rows(t)} limbs "
                    f"(level {_rows(t) - 1})",
                )
        # C006: rescale corrections drop exactly one limb from the
        # widest ciphertext input.
        if _is_rescale_correction(op):
            widest = max(
                (_rows(t) for t in _poly_inputs(op)), default=0
            )
            if op.limbs != widest - 1:
                report.emit(
                    "C006", _loc(op),
                    f"writes {op.limbs} limb rows from a level-"
                    f"{widest - 1} source; expected {widest - 1}",
                )
    return report
