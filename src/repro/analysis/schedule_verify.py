"""Schedule legality verification (rules S001-S009).

Checks a produced :class:`~repro.sched.dataflow.Schedule` against one
:class:`~repro.hw.config.HardwareConfig` without re-running the DP or
the simulator:

* per-step physical legality — group buffer vs SRAM (S003), PE
  allocation bounds (S004), kept outputs actually produced (S008),
  finite non-negative costs (S009) — via :func:`verify_steps`;
* whole-schedule properties that need the source graph — cross-step
  dependency order (S001), exactly-once coverage (S002), and the
  temporal pipelining/sharing residency provenance the cost model's
  discounts rely on (S005-S007) — via :func:`verify_schedule`.

The residency rules encode the scheduler's by-construction invariants:
a step may only discount a DRAM read for a tensor some earlier step
*kept* (or a chained graph input), only skip a constant fetch for a
constant an earlier step actually brought on-chip, and the constants
held across steps must fit the temporal-sharing budget.  Schedules
assembled by hand (or mutated fixtures) that fake residency are caught
here, because their reported seconds would under-count DRAM traffic.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Set

from repro.analysis.diagnostics import DiagnosticReport
from repro.hw.config import HardwareConfig
from repro.ir.graph import OperatorGraph
from repro.ir.operators import OpKind
from repro.sched.dataflow import Schedule, ScheduledStep
from repro.sched.scheduler import SchedulerConfig


def _step_loc(index: int, step: ScheduledStep) -> str:
    ops = step.plan.ops
    head = ops[0].name if ops else "<empty>"
    return f"step {index} [{head}{'...' if len(ops) > 1 else ''}]"


def _counters(step: ScheduledStep) -> Dict[str, float]:
    m = step.metrics
    return {
        "seconds": step.seconds,
        "compute_cycles": m.compute_cycles,
        "buffer_bytes": m.buffer_bytes,
        "noc_bytes": m.noc_bytes,
        "transpose_bytes": m.transpose_bytes,
        "sram_bytes": m.sram_bytes,
        "dram_read_bytes": m.dram_read_bytes,
        "dram_write_bytes": m.dram_write_bytes,
    }


def verify_steps(
    steps: Sequence[ScheduledStep],
    hw: HardwareConfig,
    config: Optional[SchedulerConfig] = None,
) -> DiagnosticReport:
    """Per-step legality (S003, S004, S008, S009).

    Needs no graph, so it also fits schedules whose steps were assembled
    from several partition subgraphs; this is the simulator's pre-run
    gate.
    """
    report = DiagnosticReport(pass_name="schedule-steps")
    for i, step in enumerate(steps):
        loc = _step_loc(i, step)
        plan = step.plan

        # S003: the group's working set must fit the global SRAM.
        if plan.metrics.buffer_bytes > hw.sram_capacity_bytes:
            report.emit(
                "S003", loc,
                f"buffer footprint {plan.metrics.buffer_bytes} B exceeds "
                f"SRAM capacity {hw.sram_capacity_bytes} B",
            )

        # S004: PE allocation bounds.
        compute_ops = [
            op for op in plan.ops if op.kind is not OpKind.TRANSPOSE
        ]
        if compute_ops and not plan.pe_allocation:
            report.emit(
                "S004", loc,
                f"{len(compute_ops)} compute operators but no PE "
                "allocation (infeasible spatial group)",
            )
        total = sum(plan.pe_allocation.values())
        if total > hw.num_pes:
            report.emit(
                "S004", loc,
                f"allocates {total} PEs, the array has {hw.num_pes}",
            )
        for uid, count in plan.pe_allocation.items():
            if count < 1:
                names = {op.uid: op.name for op in plan.ops}
                report.emit(
                    "S004", loc,
                    f"operator {names.get(uid, uid)} allocated "
                    f"{count} PEs; pipelined stages need at least one",
                )
        if config is not None and len(plan.ops) > config.max_group_size:
            report.emit(
                "S004", loc,
                f"window of {len(plan.ops)} operators exceeds "
                f"max_group_size={config.max_group_size}",
            )

        # S008: kept outputs must be boundary outputs of this very group.
        _, outs = plan.boundary()
        out_uids = {t.uid for t in outs}
        for uid in sorted(step.kept_outputs - out_uids):
            report.emit(
                "S008", loc,
                f"keeps tensor uid {uid}, which this group does not "
                "produce for later steps",
            )

        # S009: costs must be physical.
        for name, value in _counters(step).items():
            if not math.isfinite(value) or value < 0:
                report.emit(
                    "S009", loc, f"{name} is {value!r}"
                )
    return report


def verify_schedule(
    schedule: Schedule,
    hw: HardwareConfig,
    graph: Optional[OperatorGraph] = None,
    config: Optional[SchedulerConfig] = None,
) -> DiagnosticReport:
    """Full legality of one schedule (all S rules).

    ``graph`` enables the order/coverage rules (S001, S002); leave it
    out for schedules stitched from partition twins, whose steps repeat
    by construction.  ``config`` enables the knob-dependent bounds
    (window size, constant residency budget).
    """
    report = DiagnosticReport(pass_name="schedule")
    report.extend(verify_steps(schedule.steps, hw, config))

    # Which step executes each operator (uid -> earliest step index).
    op_step: Dict[int, int] = {}
    seen_count: Dict[int, int] = {}
    for i, step in enumerate(schedule.steps):
        for op in step.plan.ops:
            op_step.setdefault(op.uid, i)
            seen_count[op.uid] = seen_count.get(op.uid, 0) + 1

    if graph is not None:
        graph_input_uids = {t.uid for t in graph.graph_inputs()}

        # S002: exactly-once coverage.
        for op in graph.operators:
            count = seen_count.get(op.uid, 0)
            if count != 1:
                report.emit(
                    "S002", f"op {op.name}",
                    f"scheduled {count} times",
                )

        # S001: every consumed intermediate is produced in the same or
        # an earlier step.
        for i, step in enumerate(schedule.steps):
            for op in step.plan.ops:
                for t in op.inputs:
                    producer = graph.producer_of(t)
                    if producer is None:
                        continue
                    j = op_step.get(producer.uid)
                    if j is not None and j > i:
                        report.emit(
                            "S001", _step_loc(i, step),
                            f"{op.name} consumes {t.name}, produced by "
                            f"{producer.name} in step {j}",
                        )

        # S005: residency provenance — a discounted read must point at a
        # tensor an earlier step kept on-chip, or a chained graph input.
        kept_so_far: Set[int] = set()
        for i, step in enumerate(schedule.steps):
            illegal = (
                step.resident_inputs - kept_so_far - graph_input_uids
            )
            for uid in sorted(illegal):
                report.emit(
                    "S005", _step_loc(i, step),
                    f"discounts the DRAM read of tensor uid {uid}, "
                    "which no earlier step kept on-chip",
                )
            kept_so_far |= step.kept_outputs

    # S006/S007 need no graph: constants are identified per step by the
    # plan's own metrics.
    fetched_bytes: Dict[int, int] = {}
    for i, step in enumerate(schedule.steps):
        loc = _step_loc(i, step)
        unfetched = step.resident_constants - set(fetched_bytes)
        for uid in sorted(unfetched):
            report.emit(
                "S006", loc,
                f"treats constant uid {uid} as resident, but no earlier "
                "step fetched it",
            )
        if config is not None:
            budget = int(
                hw.sram_capacity_bytes * config.constant_residency_fraction
            )
            held = sum(
                fetched_bytes.get(uid, 0)
                for uid in step.resident_constants
            )
            if held > budget:
                report.emit(
                    "S007", loc,
                    f"holds {held} B of resident constants; the "
                    f"temporal-sharing budget is {budget} B "
                    f"({config.constant_residency_fraction} of SRAM)",
                )
        for uid, nbytes in step.plan.metrics.constant_bytes.items():
            fetched_bytes.setdefault(uid, nbytes)
    return report
