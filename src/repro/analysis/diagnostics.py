"""The shared diagnostics core of :mod:`repro.analysis`.

Every static pass (graph, CKKS semantics, schedule legality, repo lint)
reports through the same vocabulary: a :class:`Diagnostic` is one
finding — rule id, severity, location, message, fix hint — and a
:class:`DiagnosticReport` is an ordered collection with text and JSON
renderers.  Rules are declared once in :data:`RULES` so the catalog in
DESIGN.md, the passes, and the tests all agree on ids and severities.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.resilience.errors import InvariantViolation

#: Process exit status shared by every diagnostics front end: the
#: experiment runner's ``--verify``, ``python -m repro.analysis`` (both
#: the workload verifier and the ``flow`` subcommand), and the repo lint
#: ratchet all exit 5 on ERROR findings so CI branches on one code.
EXIT_VERIFY = 5


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a verification gate fail; ``WARNING``
    findings are reported but never block.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One verification rule: stable id, summary, severity, fix hint."""

    id: str
    title: str
    severity: Severity
    hint: str


def _catalog(rules: Iterable[Rule]) -> Dict[str, Rule]:
    out: Dict[str, Rule] = {}
    for rule in rules:
        if rule.id in out:
            raise InvariantViolation(
                "repro.analysis.diagnostics._catalog",
                f"duplicate rule id {rule.id}",
            )
        out[rule.id] = rule
    return out


#: The rule catalog (mirrored in DESIGN.md).  Ids are stable: tests and
#: downstream tooling key on them, so never renumber — retire and add.
RULES: Dict[str, Rule] = _catalog([
    # ---- graph verifier (G) -------------------------------------------
    Rule("G001", "graph contains a cycle", Severity.ERROR,
         "break the dependency loop; OperatorGraph.add_operator rejects "
         "cycle-closing edges at insertion time"),
    Rule("G002", "tensor has more than one producer", Severity.ERROR,
         "every tensor is SSA: give each producing operator its own "
         "output tensor"),
    Rule("G003", "intermediate consumed but never produced", Severity.ERROR,
         "POLY tensors must be produced inside the graph; use an "
         "EXTERNAL tensor for program inputs"),
    Rule("G004", "tensor registered but never used", Severity.WARNING,
         "drop the orphaned tensor or wire it to an operator"),
    Rule("G005", "edge tensor inconsistent with endpoint operators",
         Severity.ERROR,
         "the tensor on a producer->consumer edge must appear in the "
         "producer's outputs and the consumer's inputs"),
    # ---- CKKS semantic verifier (C) -----------------------------------
    Rule("C001", "operator/tensor shape disagreement", Severity.ERROR,
         "the operator's declared limbs/N must match its tensors' "
         "(limbs, N) shapes"),
    Rule("C002", "limb inflation without base conversion", Severity.ERROR,
         "only BConv extends the limb basis; an element-wise operator "
         "cannot emit more limb rows than its inputs carry"),
    Rule("C003", "level budget underflow", Severity.ERROR,
         "a ciphertext polynomial needs at least one limb; rescale/"
         "modswitch bookkeeping dropped below level 0"),
    Rule("C004", "four-step NTT split mismatch", Severity.ERROR,
         "decomposed NTT phases need n_split with n1*n2 == N and "
         "twiddles of length N, N1, or N2"),
    Rule("C005", "evk/digit disagreement on key-switch inner product",
         Severity.ERROR,
         "the evk's beta/limb dimensions must match the operator's "
         "digit count and extended limb basis"),
    Rule("C006", "rescale must drop exactly one limb", Severity.ERROR,
         "an HRescale correction writes one limb row fewer than its "
         "source ciphertext carries"),
    # ---- schedule legality verifier (S) -------------------------------
    Rule("S001", "step consumes a tensor scheduled later", Severity.ERROR,
         "reorder the steps: every producer must run in the same or an "
         "earlier step than its consumers"),
    Rule("S002", "schedule does not cover the graph exactly once",
         Severity.ERROR,
         "each operator must appear in exactly one scheduled step"),
    Rule("S003", "group buffer footprint exceeds SRAM", Severity.ERROR,
         "boundary tensors + constants + double-buffered granules must "
         "fit sram_bytes; shrink the window or the split"),
    Rule("S004", "PE allocation out of bounds", Severity.ERROR,
         "a spatial group allocates at most num_pes PEs and every "
         "compute operator at least one"),
    Rule("S005", "resident input was never kept on-chip", Severity.ERROR,
         "a step may only discount DRAM reads for tensors an earlier "
         "step kept (or chained graph inputs)"),
    Rule("S006", "resident constant was never fetched", Severity.ERROR,
         "temporal sharing only covers constants an earlier step "
         "actually brought on-chip"),
    Rule("S007", "resident constants exceed the residency budget",
         Severity.ERROR,
         "the constants held across steps must fit "
         "constant_residency_fraction * sram_bytes"),
    Rule("S008", "kept output is not a boundary output", Severity.ERROR,
         "a step can only keep tensors it actually produces for later "
         "steps"),
    Rule("S009", "non-physical step cost", Severity.ERROR,
         "step seconds and traffic counters must be finite and "
         "non-negative"),
    # ---- repo lint (L) ------------------------------------------------
    Rule("L001", "bare assert in library code", Severity.ERROR,
         "asserts vanish under python -O; raise a typed ReproError "
         "subclass (e.g. InvariantViolation) instead"),
    Rule("L002", "untyped raise in library code", Severity.ERROR,
         "raise a ReproError subclass from repro.resilience.errors so "
         "callers can branch on the failure class"),
    # ---- whole-program dataflow verifier (F) --------------------------
    Rule("F001", "inter-operator level budget violation", Severity.ERROR,
         "an operator declares more limb rows than any chain of "
         "predecessors can supply (or the chain underflows below one "
         "limb); only BConv inside a ModUp may widen the basis"),
    Rule("F002", "cross-window residency exceeds the keep budget",
         Severity.ERROR,
         "the kept ciphertexts a schedule claims resident across a step "
         "must fit keep_fraction * sram_capacity_bytes; a claim that "
         "cannot fit lets the simulator skip DRAM reads that must "
         "physically happen — keep less or spill earlier"),
    Rule("F003", "key-switch window consumes unmaterialized operands",
         Severity.ERROR,
         "every KSKInP window needs its evk fetched (or proven resident "
         "from an earlier fetch) and its digits produced by a ModUp "
         "base-conversion chain scheduled no later than the window"),
    Rule("F004", "tensor recomputed or kept dead across windows",
         Severity.WARNING,
         "two scheduled windows recompute an identical operator (same "
         "kind/signature/tag on the same inputs), or a kept output is "
         "never claimed by a later window; share it via temporal "
         "pipelining instead"),
    # ---- lowering pipeline (P) ----------------------------------------
    Rule("P001", "pass left operators above its target level",
         Severity.ERROR,
         "a registered rewrite declared a target level but its output "
         "graph still contains coarse (KEY_SWITCH/ROT_BATCH) or, at the "
         "decomposed level with a split configured, monolithic NTT "
         "operators it should have expanded; the rewrite is incomplete"),
    Rule("P002", "NTT split off the Section V-D candidate set",
         Severity.WARNING,
         "the configured four-step split is not among "
         "candidate_splits() for the default PE lane width; the "
         "decomposed tiles may under-fill the lanes — pick N1/N2 at "
         "least the lane count with a bounded aspect ratio"),
    # ---- determinism lint (D): byte-identity guardrails ---------------
    Rule("D001", "unseeded random source", Severity.ERROR,
         "module-level random.* / numpy.random.* and zero-argument "
         "Random()/default_rng() draw from global or OS entropy; seed "
         "explicitly (e.g. random.Random(f\"...\")) so artifacts are "
         "byte-identical per seed"),
    Rule("D002", "wall-clock value flows into artifact content",
         Severity.ERROR,
         "time.time()/datetime.now() in a function that also serializes "
         "JSON makes artifacts differ run-to-run; keep timestamps out "
         "of artifact bytes or stamp them outside the serialized dict"),
    Rule("D003", "iteration over an unordered set", Severity.ERROR,
         "for/comprehension over a set literal or set()/frozenset() "
         "call iterates in hash order; wrap it in sorted(...)"),
    Rule("D004", "unsorted directory listing", Severity.ERROR,
         "os.listdir/scandir and glob/iterdir return entries in "
         "filesystem order; wrap the call in sorted(...) before "
         "iterating or serializing"),
    Rule("D005", "order-sensitive pool result consumption", Severity.ERROR,
         "concurrent.futures.as_completed / Pool.imap_unordered yield "
         "in completion order; collect futures in submission order "
         "(e.g. pool.map or an indexed dict) before emitting results"),
])


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static pass."""

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """One-finding text form: ``severity[rule] location: message``."""
        text = f"{self.severity.value}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, str]:
        """JSON-serializable form of this finding."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class DiagnosticReport:
    """Ordered findings of one pass (or several merged passes)."""

    pass_name: str = "analysis"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        rule_id: str,
        location: str,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record one finding under a cataloged rule.

        ``severity`` overrides the rule's default (a gate may downgrade
        a rule to a warning without losing the rule id).
        """
        rule = RULES[rule_id]
        diag = Diagnostic(
            rule=rule.id,
            severity=severity or rule.severity,
            location=location,
            message=message,
            hint=rule.hint,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticReport") -> None:
        """Append every finding of another report, in order."""
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were emitted."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was emitted (not even warnings)."""
        return not self.diagnostics

    def rule_ids(self) -> List[str]:
        """The rule id of every finding, in emission order."""
        return [d.rule for d in self.diagnostics]

    def render_text(self) -> str:
        """Multi-line text report (header, findings, ``clean`` marker)."""
        lines = [
            f"== {self.pass_name}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) =="
        ]
        lines.extend(d.render() for d in self.diagnostics)
        if self.clean:
            lines.append("clean")
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON report: pass name, counts, and every finding."""
        return json.dumps(
            {
                "pass": self.pass_name,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=indent,
        )


def reports_document(reports: Sequence[DiagnosticReport]) -> Dict[str, Any]:
    """The shared JSON document for multi-report verification runs.

    Every front end that aggregates several passes — runner
    ``--verify-json``, ``python -m repro.analysis --json``, the ``flow``
    subcommand, and the lint ratchet — emits this exact shape so CI
    parses one schema: total counts plus one entry per pass.
    """
    return {
        "errors": sum(len(r.errors) for r in reports),
        "warnings": sum(len(r.warnings) for r in reports),
        "reports": [
            {
                "pass": r.pass_name,
                "errors": len(r.errors),
                "warnings": len(r.warnings),
                "diagnostics": [d.to_dict() for d in r.diagnostics],
            }
            for r in reports
        ],
    }
