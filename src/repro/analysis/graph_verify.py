"""Static graph verification (rules G001-G005).

Checks the structural invariants an :class:`~repro.ir.graph.OperatorGraph`
must satisfy before any scheduling or simulation makes sense: acyclicity,
single-producer (SSA) tensors, no dangling or orphaned tensors, and
edge/endpoint agreement.  The pass never executes the simulator and is
robust to corrupt graphs — it reports instead of raising.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.analysis.diagnostics import DiagnosticReport
from repro.ir.graph import OperatorGraph
from repro.ir.operators import Operator
from repro.ir.tensors import TensorKind


def _cycle_members(g: "nx.DiGraph") -> List[str]:
    """Operator names along one cycle (best effort)."""
    try:
        edges = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return []
    names = [edge[0].name for edge in edges]
    if edges:
        names.append(edges[-1][1].name)
    return names


def verify_graph(graph: OperatorGraph) -> DiagnosticReport:
    """Run the graph pass; returns a report (empty when clean)."""
    report = DiagnosticReport(pass_name=f"graph:{graph.name}")

    # G001: acyclicity.  Use the underlying DiGraph directly so the pass
    # works on graphs too corrupt for operators_topological().
    g = graph._nx
    if not nx.is_directed_acyclic_graph(g):
        members = _cycle_members(g)
        report.emit(
            "G001", f"graph {graph.name}",
            "dependency cycle: " + " -> ".join(members),
        )

    # G002: single producer per tensor (SSA), scanned from the operators
    # themselves so corruption of the producer index is also caught.
    producers: Dict[int, List[Operator]] = {}
    tensor_names: Dict[int, str] = {}
    for op in graph.operators:
        for t in op.outputs:
            producers.setdefault(t.uid, []).append(op)
            tensor_names[t.uid] = t.name
    for uid, ops in producers.items():
        if len(ops) > 1:
            report.emit(
                "G002", f"tensor {tensor_names[uid]}",
                f"{len(ops)} producers: "
                + ", ".join(op.name for op in ops),
            )

    # G003: dangling intermediates — a POLY tensor consumed by some
    # operator but produced by none.  EXTERNAL and constant tensors are
    # legitimate graph inputs; intermediates are not.
    for op in graph.operators:
        for t in op.inputs:
            if t.kind is TensorKind.POLY and t.uid not in producers:
                report.emit(
                    "G003", f"tensor {t.name}",
                    f"consumed by {op.name} but produced by no operator",
                )

    # G004: orphaned tensors — registered with the graph but neither
    # produced nor consumed by any operator.
    for t in graph.tensors:
        if graph.producer_of(t) is None and not graph.consumers_of(t):
            report.emit(
                "G004", f"tensor {t.name}",
                "registered with the graph but never used",
            )

    # G005: edge agreement — the tensor on each producer->consumer edge
    # must appear in both endpoints' tensor lists.
    for prod, cons, data in g.edges(data=True):
        t = data.get("tensor")
        if t is None:
            report.emit(
                "G005", f"edge {prod.name} -> {cons.name}",
                "edge carries no tensor",
            )
            continue
        if all(o.uid != t.uid for o in prod.outputs):
            report.emit(
                "G005", f"edge {prod.name} -> {cons.name}",
                f"tensor {t.name} is not an output of {prod.name}",
            )
        if all(i.uid != t.uid for i in cons.inputs):
            report.emit(
                "G005", f"edge {prod.name} -> {cons.name}",
                f"tensor {t.name} is not an input of {cons.name}",
            )
    return report
