"""``python -m repro.analysis``: verify the shipped workloads.

Builds the evaluation workloads, runs every static pass on every
distinct segment (graph, CKKS semantics, whole-program dataflow,
schedule legality), and prints the combined report.  ``python -m
repro.analysis flow [workload ...]`` runs only the F* dataflow passes.

Exit code 0 when no ERROR diagnostics were found,
:data:`~repro.analysis.diagnostics.EXIT_VERIFY` (5, shared with the
experiment runner's ``--verify``) otherwise.  ``--json`` emits the same
document shape as ``runner --verify-json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import (
    EXIT_VERIFY,
    flow_workloads,
    reports_document,
    verify_workloads,
)

_DEFAULT_WORKLOADS = ["bootstrapping", "helr", "resnet20"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    flow_only = bool(argv) and argv[0] == "flow"
    if flow_only:
        argv = argv[1:]
        # ``flow resnet20`` reads naturally; accept bare workload names
        # as well as the --workloads form.
        positional_workloads = [a for a in argv if not a.startswith("-")]
        if positional_workloads:
            argv = [a for a in argv if a.startswith("-")]
            argv += ["--workloads", *positional_workloads]

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify the shipped workload graphs and "
        "schedules (no simulation).  The 'flow' subcommand runs only "
        "the F* whole-program dataflow passes.",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=_DEFAULT_WORKLOADS,
        help="workloads to verify",
    )
    parser.add_argument(
        "--params", default="ARK", help="CKKS parameter set name"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the runner-compatible verification JSON document",
    )
    args = parser.parse_args(argv)

    run = flow_workloads if flow_only else verify_workloads
    reports = run(
        workload_names=tuple(args.workloads), params_name=args.params
    )
    document = reports_document(reports)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        for report in reports:
            if not report.clean:
                print(report.render_text())
        what = "flow pass" if flow_only else "pass"
        print(
            f"verified {len(reports)} {what} run(s): "
            f"{document['errors']} error(s), "
            f"{document['warnings']} warning(s)"
        )
    return 0 if document["errors"] == 0 else EXIT_VERIFY


if __name__ == "__main__":
    sys.exit(main())
