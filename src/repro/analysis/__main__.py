"""``python -m repro.analysis``: verify the shipped workloads.

Builds the evaluation workloads, runs every static pass on every
distinct segment (graph, CKKS semantics, schedule legality), and prints
the combined report.  Exit code 0 when no ERROR diagnostics were found,
1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis import verify_workloads


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically verify the shipped workload graphs and "
        "schedules (no simulation).",
    )
    parser.add_argument(
        "--workloads", nargs="+",
        default=["bootstrapping", "helr", "resnet20"],
        help="workloads to verify",
    )
    parser.add_argument(
        "--params", default="ARK", help="CKKS parameter set name"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit reports as JSON"
    )
    args = parser.parse_args(argv)

    reports = verify_workloads(
        workload_names=tuple(args.workloads), params_name=args.params
    )
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.json:
        print(json.dumps(
            {
                "errors": errors,
                "warnings": warnings,
                "reports": [json.loads(r.to_json(indent=None)) for r in reports],
            },
            indent=2,
        ))
    else:
        for report in reports:
            if not report.clean:
                print(report.render_text())
        print(
            f"verified {len(reports)} pass run(s): "
            f"{errors} error(s), {warnings} warning(s)"
        )
    return 0 if errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
