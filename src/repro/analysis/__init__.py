"""Static verification of graphs, CKKS semantics, and schedules.

Everything in this package runs *before* (and without) the simulator:

* :mod:`repro.analysis.diagnostics` — the shared vocabulary: the rule
  catalog (:data:`~repro.analysis.diagnostics.RULES`), ``Diagnostic``,
  ``DiagnosticReport`` with text/JSON renderers.
* :mod:`repro.analysis.graph_verify` — structural graph invariants
  (G001-G005).
* :mod:`repro.analysis.semantics` — CKKS limb/level/shape consistency
  (C001-C006).
* :mod:`repro.analysis.schedule_verify` — schedule legality against a
  hardware configuration (S001-S009).
* :mod:`repro.analysis.flow` — whole-program dataflow verification
  (F001-F004) on a worklist/fixpoint abstract-interpretation framework.
* :mod:`repro.analysis.lint` — the repo lint pass (L001-L002) and the
  determinism lint (D001-D005).

Entry points: the scheduler's post-``schedule()`` gate
(``SchedulerConfig.verify``), the simulator's pre-run check, the
experiment runner's ``--verify`` flag, and ``python -m repro.analysis``
which verifies the shipped workloads end to end (``python -m
repro.analysis flow <workload>`` runs just the F* dataflow passes).
"""

from repro.analysis.diagnostics import (
    EXIT_VERIFY,
    RULES,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
    reports_document,
)
from repro.analysis.flow import (
    verify_flow_graph,
    verify_flow_schedule,
    verify_key_reach,
    verify_levels,
    verify_residency,
    verify_sharing,
)
from repro.analysis.graph_verify import verify_graph
from repro.analysis.schedule_verify import verify_schedule, verify_steps
from repro.analysis.semantics import verify_semantics

__all__ = [
    "EXIT_VERIFY",
    "RULES",
    "Rule",
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "reports_document",
    "verify_graph",
    "verify_semantics",
    "verify_schedule",
    "verify_steps",
    "verify_flow_graph",
    "verify_flow_schedule",
    "verify_levels",
    "verify_residency",
    "verify_key_reach",
    "verify_sharing",
    "verify_workloads",
    "flow_workloads",
]


def verify_workloads(
    workload_names=("bootstrapping", "helr", "resnet20"),
    params_name: str = "ARK",
    hw=None,
):
    """Statically verify the shipped workloads end to end.

    Builds each workload the way the evaluation does (four-step NTTs,
    hybrid rotation), then runs every pass on every distinct segment:
    graph + semantics + whole-graph dataflow (F*) on the operator
    graph, and full schedule legality plus the cross-window F* rules on
    the schedule the CROPHE scheduler produces for it.  Returns one
    list of :class:`DiagnosticReport` (one per pass per segment).
    """
    from repro.fhe.params import parameter_set
    from repro.hw.config import CROPHE_64
    from repro.sched.scheduler import Scheduler, SchedulerConfig
    from repro.workloads import WORKLOAD_BUILDERS
    from repro.workloads.base import WorkloadOptions

    params = parameter_set(params_name)
    hw = hw or CROPHE_64
    root = 1 << (params.log_n // 2)
    options = WorkloadOptions(
        ntt_split=(root, params.n // root),
        rotation_strategy="hybrid",
        r_hyb=4,
    )
    # The gate itself is what we are exercising externally: run the
    # scheduler bare and apply the passes explicitly.
    config = SchedulerConfig(verify="off")

    reports = []
    seen = set()
    for name in workload_names:
        workload = WORKLOAD_BUILDERS[name](params, options)
        for segment in workload.segments:
            graph = segment.graph
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            for report in (
                verify_graph(graph),
                verify_semantics(graph, params),
                verify_flow_graph(graph),
            ):
                report.pass_name = f"{name}/{segment.name} {report.pass_name}"
                reports.append(report)
            scheduler = Scheduler(
                graph, hw, config, n_split=options.ntt_split
            )
            schedule = scheduler.schedule()
            for report in (
                verify_schedule(schedule, hw, graph=graph, config=config),
                verify_flow_schedule(schedule, hw, graph=graph),
            ):
                report.pass_name = f"{name}/{segment.name} {report.pass_name}"
                reports.append(report)
    return reports


def flow_workloads(
    workload_names=("bootstrapping", "helr", "resnet20"),
    params_name: str = "ARK",
    hw=None,
):
    """Run only the F* dataflow passes over the named workloads.

    The backend of ``python -m repro.analysis flow <workload>``: builds
    each workload like :func:`verify_workloads`, runs the whole-graph
    analyses (F001/F003/F004) on every distinct segment and the
    cross-window analyses (F002/F003/F004) on its schedule.
    """
    from repro.fhe.params import parameter_set
    from repro.hw.config import CROPHE_64
    from repro.sched.scheduler import Scheduler, SchedulerConfig
    from repro.workloads import WORKLOAD_BUILDERS
    from repro.workloads.base import WorkloadOptions

    params = parameter_set(params_name)
    hw = hw or CROPHE_64
    root = 1 << (params.log_n // 2)
    options = WorkloadOptions(
        ntt_split=(root, params.n // root),
        rotation_strategy="hybrid",
        r_hyb=4,
    )
    config = SchedulerConfig(verify="off")

    reports = []
    seen = set()
    for name in workload_names:
        workload = WORKLOAD_BUILDERS[name](params, options)
        for segment in workload.segments:
            graph = segment.graph
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            report = verify_flow_graph(graph)
            report.pass_name = f"{name}/{segment.name} {report.pass_name}"
            reports.append(report)
            schedule = Scheduler(
                graph, hw, config, n_split=options.ntt_split
            ).schedule()
            report = verify_flow_schedule(schedule, hw, graph=graph)
            report.pass_name = f"{name}/{segment.name} {report.pass_name}"
            reports.append(report)
    return reports
