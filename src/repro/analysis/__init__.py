"""Static verification of graphs, CKKS semantics, and schedules.

Everything in this package runs *before* (and without) the simulator:

* :mod:`repro.analysis.diagnostics` — the shared vocabulary: the rule
  catalog (:data:`~repro.analysis.diagnostics.RULES`), ``Diagnostic``,
  ``DiagnosticReport`` with text/JSON renderers.
* :mod:`repro.analysis.graph_verify` — structural graph invariants
  (G001-G005).
* :mod:`repro.analysis.semantics` — CKKS limb/level/shape consistency
  (C001-C006).
* :mod:`repro.analysis.schedule_verify` — schedule legality against a
  hardware configuration (S001-S009).
* :mod:`repro.analysis.lint` — the repo lint pass (L001-L002).

Entry points: the scheduler's post-``schedule()`` gate
(``SchedulerConfig.verify``), the simulator's pre-run check, the
experiment runner's ``--verify`` flag, and ``python -m repro.analysis``
which verifies the shipped workloads end to end.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
)
from repro.analysis.graph_verify import verify_graph
from repro.analysis.schedule_verify import verify_schedule, verify_steps
from repro.analysis.semantics import verify_semantics

__all__ = [
    "RULES",
    "Rule",
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "verify_graph",
    "verify_semantics",
    "verify_schedule",
    "verify_steps",
    "verify_workloads",
]


def verify_workloads(
    workload_names=("bootstrapping", "helr", "resnet20"),
    params_name: str = "ARK",
    hw=None,
):
    """Statically verify the shipped workloads end to end.

    Builds each workload the way the evaluation does (four-step NTTs,
    hybrid rotation), then runs every pass on every distinct segment:
    graph + semantics on the operator graph, and full schedule legality
    on the schedule the CROPHE scheduler produces for it.  Returns one
    list of :class:`DiagnosticReport` (one per pass per segment).
    """
    from repro.fhe.params import parameter_set
    from repro.hw.config import CROPHE_64
    from repro.sched.scheduler import Scheduler, SchedulerConfig
    from repro.workloads import WORKLOAD_BUILDERS
    from repro.workloads.base import WorkloadOptions

    params = parameter_set(params_name)
    hw = hw or CROPHE_64
    root = 1 << (params.log_n // 2)
    options = WorkloadOptions(
        ntt_split=(root, params.n // root),
        rotation_strategy="hybrid",
        r_hyb=4,
    )
    # The gate itself is what we are exercising externally: run the
    # scheduler bare and apply the passes explicitly.
    config = SchedulerConfig(verify="off")

    reports = []
    seen = set()
    for name in workload_names:
        workload = WORKLOAD_BUILDERS[name](params, options)
        for segment in workload.segments:
            graph = segment.graph
            if id(graph) in seen:
                continue
            seen.add(id(graph))
            for report in (verify_graph(graph), verify_semantics(graph, params)):
                report.pass_name = f"{name}/{segment.name} {report.pass_name}"
                reports.append(report)
            scheduler = Scheduler(
                graph, hw, config, n_split=options.ntt_split
            )
            schedule = scheduler.schedule()
            report = verify_schedule(schedule, hw, graph=graph, config=config)
            report.pass_name = f"{name}/{segment.name} {report.pass_name}"
            reports.append(report)
    return reports
