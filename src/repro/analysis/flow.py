"""Whole-program dataflow verification (``repro.analysis.flow``).

The local verifiers (G*/C*/S*) check one operator or one scheduled step
at a time; the properties CROPHE's cross-operator optimizations rely on
are *inter*-operator: a level budget must survive whole
bootstrap/rescale chains, SRAM residency accumulates across window
boundaries, and a key-switch inner product is only legal if some
predecessor chain actually materialized its extended digit basis.  This
module adds the F* rule family for exactly those properties, built on a
small abstract-interpretation framework:

* :class:`Lattice` implementations (interval, powerset, boolean-or)
  with ``join``/``widen``/``leq``;
* :class:`DataflowAnalysis`, a forward/backward worklist fixpoint
  engine over :class:`~repro.ir.graph.OperatorGraph` whose worklist is
  a heap of topological indices — the visit order (and therefore every
  report) is deterministic regardless of hash seeds;
* four concrete verifiers: :func:`verify_levels` (F001, the
  whole-graph generalization of C002/C003), :func:`verify_residency`
  (F002, ciphertext liveness + peak SRAM claims per scheduled window),
  :func:`verify_key_reach` (F003, evk fetch + ModUp-materialized
  digits for every key-switch window), and :func:`verify_sharing`
  (F004, cross-window recompute / dead sibling outputs).

ROADMAP item 5's pass pipeline reuses :class:`DataflowAnalysis` as the
engine for inter-pass invariants; keep the framework free of any
schedule-specific state.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Generic,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.analysis.diagnostics import DiagnosticReport
from repro.ir.graph import OperatorGraph
from repro.ir.operators import Operator, OpKind
from repro.ir.tensors import DataTensor, TensorKind
from repro.resilience.errors import InvariantViolation

V = TypeVar("V")

# ---------------------------------------------------------------------------
# Lattices
# ---------------------------------------------------------------------------


class Lattice(Generic[V]):
    """A join-semilattice over abstract values of type ``V``.

    ``bottom`` is the least element, ``join`` the least upper bound,
    ``leq`` the induced partial order, and ``widen`` an (optional)
    widening operator — it defaults to ``join``, which is enough for
    finite-height lattices; infinite-height lattices (intervals)
    override it to force convergence.
    """

    def bottom(self) -> V:
        """The least element of the lattice."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        """Least upper bound of two abstract values."""
        raise NotImplementedError

    def leq(self, a: V, b: V) -> bool:
        """Partial order: is ``a`` below (or equal to) ``b``?"""
        raise NotImplementedError

    def widen(self, old: V, new: V) -> V:
        """Widening operator; defaults to :meth:`join`."""
        return self.join(old, new)


#: Interval values: ``None`` is bottom, otherwise ``(lo, hi)``.
Interval = Optional[Tuple[int, int]]


class IntervalLattice(Lattice[Interval]):
    """Integer intervals with widening to configurable bounds.

    Used by F001 to track how many limb rows a tensor can carry.  The
    lattice has infinite ascending chains, so :meth:`widen` jumps any
    still-moving bound straight to ``floor``/``ceiling``.
    """

    def __init__(self, floor: int = 0, ceiling: int = 1 << 30):
        self.floor = floor
        self.ceiling = ceiling

    def bottom(self) -> Interval:
        """``None``: no value observed yet."""
        return None

    def singleton(self, value: int) -> Interval:
        """The one-point interval ``[value, value]``."""
        return (value, value)

    def join(self, a: Interval, b: Interval) -> Interval:
        """Interval hull of ``a`` and ``b``."""
        if a is None:
            return b
        if b is None:
            return a
        return (min(a[0], b[0]), max(a[1], b[1]))

    def leq(self, a: Interval, b: Interval) -> bool:
        """Interval containment: ``a`` within ``b``."""
        if a is None:
            return True
        if b is None:
            return False
        return b[0] <= a[0] and a[1] <= b[1]

    def widen(self, old: Interval, new: Interval) -> Interval:
        """Jump any still-moving bound to ``floor``/``ceiling``."""
        if old is None:
            return new
        if new is None:
            return old
        lo = old[0] if old[0] <= new[0] else self.floor
        hi = old[1] if new[1] <= old[1] else self.ceiling
        return (lo, hi)


class PowersetLattice(Lattice[FrozenSet[Any]]):
    """Finite powerset: bottom is the empty set, join is union."""

    def bottom(self) -> FrozenSet[Any]:
        """The empty set."""
        return frozenset()

    def join(self, a: FrozenSet[Any], b: FrozenSet[Any]) -> FrozenSet[Any]:
        """Set union."""
        return a | b

    def leq(self, a: FrozenSet[Any], b: FrozenSet[Any]) -> bool:
        """Subset order."""
        return a <= b


class BoolOrLattice(Lattice[bool]):
    """Two-point lattice ``False <= True`` with or-join."""

    def bottom(self) -> bool:
        """``False``: the property has not been established."""
        return False

    def join(self, a: bool, b: bool) -> bool:
        """Logical or."""
        return a or b

    def leq(self, a: bool, b: bool) -> bool:
        """Implication order: ``False <= True``."""
        return (not a) or b


# ---------------------------------------------------------------------------
# Worklist fixpoint engine
# ---------------------------------------------------------------------------


class Direction(enum.Enum):
    """Which way a :class:`DataflowAnalysis` walks the graph."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class FixpointResult:
    """Outcome of one :meth:`DataflowAnalysis.run`.

    ``values`` maps tensor uid to its abstract value, ``visits`` counts
    transfer applications per operator uid, and ``converged`` is False
    only when some operator hit the ``max_visits`` backstop (possible
    only for non-monotone transfer functions — the backstop guarantees
    termination regardless).
    """

    values: Dict[int, Any]
    visits: Dict[int, int]
    iterations: int = 0
    converged: bool = True


class DataflowAnalysis(Generic[V]):
    """Worklist fixpoint over an operator graph's tensor environment.

    Subclasses set :attr:`direction` and :attr:`lattice`, seed the
    environment via :meth:`boundary`, and implement :meth:`transfer`,
    which returns new abstract values for the operator's *outgoing*
    tensors (outputs when forward, inputs when backward).  Values are
    accumulated with ``join``; after :attr:`widen_after` visits of the
    same operator ``widen`` replaces ``join``, and :attr:`max_visits`
    is a hard termination backstop.

    Determinism: the worklist is a heap of topological indices, so
    operators are always processed in ascending topological order
    (descending for backward analyses) no matter in which order value
    changes enqueued them.
    """

    direction: Direction = Direction.FORWARD
    widen_after: int = 4
    max_visits: int = 64

    def __init__(self, lattice: Lattice[V]):
        self.lattice = lattice

    # -- subclass hooks -------------------------------------------------

    def boundary(self, graph: OperatorGraph) -> Dict[int, V]:
        """Initial tensor environment (e.g. values for graph inputs)."""
        return {}

    def transfer(self, op: Operator, env: Mapping[int, V]) -> Dict[int, V]:
        """Abstract effect of one operator on its outgoing tensors."""
        raise NotImplementedError

    # -- engine ---------------------------------------------------------

    def run(self, graph: OperatorGraph) -> FixpointResult:
        """Iterate transfers to a fixpoint and return the environment."""
        order = graph.operators_topological()
        forward = self.direction is Direction.FORWARD
        # Heap keys ascend in processing order for both directions.
        key_of = {
            op.uid: (idx if forward else len(order) - 1 - idx)
            for idx, op in enumerate(order)
        }
        op_of = {key_of[op.uid]: op for op in order}

        # Tensor -> operators whose transfer must re-run when the
        # tensor's value changes (consumers forward, producer backward).
        dependents: Dict[int, List[int]] = {}
        for op in order:
            outgoing = op.outputs if forward else op.inputs
            incoming = op.inputs if forward else op.outputs
            for t in incoming:
                dependents.setdefault(t.uid, []).append(key_of[op.uid])
            # Touch outgoing tensors so the dict covers every edge.
            for t in outgoing:
                dependents.setdefault(t.uid, [])

        env: Dict[int, V] = dict(self.boundary(graph))
        visits: Dict[int, int] = {}
        heap = sorted(key_of.values())
        queued: Set[int] = set(heap)
        iterations = 0
        converged = True

        while heap:
            key = heapq.heappop(heap)
            queued.discard(key)
            op = op_of[key]
            count = visits.get(op.uid, 0) + 1
            visits[op.uid] = count
            if count > self.max_visits:
                converged = False
                continue
            iterations += 1
            for uid, value in self.transfer(op, env).items():
                old = env.get(uid)
                if old is None and uid not in env:
                    new = value
                else:
                    new = self.lattice.join(old, value)  # type: ignore[arg-type]
                    if count > self.widen_after:
                        new = self.lattice.widen(old, new)  # type: ignore[arg-type]
                if uid in env and self.lattice.leq(new, env[uid]):
                    continue
                env[uid] = new
                for dep_key in dependents.get(uid, ()):
                    if dep_key not in queued:
                        queued.add(dep_key)
                        heapq.heappush(heap, dep_key)
        return FixpointResult(
            values=env, visits=visits, iterations=iterations,
            converged=converged,
        )


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

_POLY_LIKE = (TensorKind.POLY, TensorKind.EXTERNAL, TensorKind.PLAINTEXT)


def _is_poly_like(t: DataTensor) -> bool:
    return t.kind in _POLY_LIKE


def _rows(t: DataTensor) -> int:
    return t.shape[0] if len(t.shape) == 2 else 0


def _loc(op: Operator) -> str:
    return f"op {op.name} ({op.kind.value})"


def _out_rows(op: Operator) -> int:
    return op.out_limbs if op.out_limbs is not None else op.limbs


# ---------------------------------------------------------------------------
# F001 — whole-graph level/scale interval propagation
# ---------------------------------------------------------------------------


class LevelIntervalAnalysis(DataflowAnalysis[Interval]):
    """Forward interval analysis of the limb rows each tensor carries.

    Graph inputs and constants seed their declared row counts; each
    operator's transfer emits its declared output rows (clamped so one
    violation does not cascade down the chain — the post-pass in
    :func:`verify_levels` re-derives the *achievable* rows per operator
    and compares against the declaration).
    """

    direction = Direction.FORWARD

    def __init__(self) -> None:
        super().__init__(IntervalLattice(floor=0))

    def boundary(self, graph: OperatorGraph) -> Dict[int, Interval]:
        """Seed producerless polynomial tensors with declared rows."""
        env: Dict[int, Interval] = {}
        for t in graph.tensors:
            if graph.producer_of(t) is None and _is_poly_like(t):
                env[t.uid] = (_rows(t), _rows(t))
        return env

    def transfer(
        self, op: Operator, env: Mapping[int, Interval]
    ) -> Dict[int, Interval]:
        """Emit each output's declared row count as a point interval."""
        rows = _out_rows(op)
        return {
            t.uid: (rows, rows) for t in op.outputs if _is_poly_like(t)
        }


def _achievable_rows(
    op: Operator, env: Mapping[int, Interval]
) -> Optional[int]:
    """Upper bound on output limb rows reachable from ``op``'s inputs.

    ``None`` means unconstrained (no tracked polynomial inputs).  The
    element-wise bound is the *max* of the inputs — strictly stronger
    than C002's local sum rule — except for the ModUp ``.extend``
    concatenation, the one place the basis legally widens by routing.
    """
    his = []
    for t in op.inputs:
        if not _is_poly_like(t):
            continue
        value = env.get(t.uid)
        his.append(value[1] if value is not None else _rows(t))
    if not his:
        return None
    if op.kind is OpKind.KSK_INP:
        # Every digit must carry the full extended basis; the weakest
        # digit bounds the inner product.
        return min(his)
    if op.kind in (
        OpKind.EW_ADD, OpKind.EW_MUL, OpKind.EW_MULADD
    ) and op.tag.endswith(".extend"):
        return sum(his)
    # NTT/automorphism/transpose/BConv read rows from their single data
    # input; element-wise ops combine rows positionally.
    return max(his)


def verify_levels(
    graph: OperatorGraph, report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """F001: inter-operator level-budget propagation (generalizes C003).

    Runs :class:`LevelIntervalAnalysis` to a fixpoint, then checks every
    operator's declared source/output rows against the rows achievable
    through its whole predecessor chain.
    """
    if report is None:
        report = DiagnosticReport(pass_name="flow.levels")
    result = LevelIntervalAnalysis().run(graph)
    env = result.values
    for op in graph.operators_topological():
        achievable = _achievable_rows(op, env)
        out_rows = _out_rows(op)
        if out_rows < 1 or op.limbs < 1:
            report.emit(
                "F001", _loc(op),
                f"level budget underflow: the chain leaves "
                f"{min(out_rows, op.limbs)} limb rows (need at least 1)",
            )
            continue
        if achievable is None:
            continue
        # Source-side demand: how many rows the operator reads.
        if op.kind is OpKind.KSK_INP:
            if op.limbs > achievable:
                report.emit(
                    "F001", _loc(op),
                    f"inner product over {op.limbs} extended limbs but a "
                    f"digit chain supplies at most {achievable}",
                )
            continue
        demanded = op.limbs if op.kind is OpKind.BCONV else None
        emitted = _out_rows(op) if op.kind is not OpKind.BCONV else None
        if demanded is not None and demanded > achievable:
            report.emit(
                "F001", _loc(op),
                f"converts {demanded} source limbs but the chain supplies "
                f"at most {achievable}",
            )
        if emitted is not None and emitted > achievable:
            report.emit(
                "F001", _loc(op),
                f"declares {emitted} limb rows but at most {achievable} "
                f"are achievable through its input chains",
            )
    return report


# ---------------------------------------------------------------------------
# F002 — ciphertext liveness + peak SRAM residency per window
# ---------------------------------------------------------------------------


def _live_ranges(steps: Sequence[Any]) -> Dict[int, Tuple[int, int]]:
    """Liveness of every kept ciphertext across the step sequence.

    Returns ``uid -> (kept_at, last_claim)``: the step that kept the
    tensor on-chip and the last later step that claims it resident —
    the window across which the schedule asserts SRAM holds it.
    """
    kept_at: Dict[int, int] = {}
    for i, step in enumerate(steps):
        for uid in step.kept_outputs:
            kept_at.setdefault(uid, i)
    last_claim: Dict[int, int] = {}
    for i in range(len(steps) - 1, -1, -1):
        for uid in steps[i].resident_inputs:
            if uid in last_claim or uid not in kept_at:
                continue
            if i > kept_at[uid]:
                last_claim[uid] = i
    return {
        uid: (kept_at[uid], last_claim[uid])
        for uid in kept_at if uid in last_claim
    }


def verify_residency(
    steps: Sequence[Any],
    hw: Any,
    report: Optional[DiagnosticReport] = None,
    config: Optional[Any] = None,
) -> DiagnosticReport:
    """F002: cross-window residency claims must fit the keep budget.

    A kept output may ride the pending stream — holding only a granule
    — for up to ``stream_window`` steps before the scheduler either
    pools it in full or spills it; a spilled tensor can never reappear
    in a later ``resident_inputs``.  So any tensor still claimed
    resident ``stream_window`` or more steps after it was kept is
    *provably* held at full size in the keep pool over that span, and
    the pool is bounded by ``keep_fraction * sram_capacity_bytes``.
    S005 only checks each claim's provenance per window; this is the
    cross-window sum — a schedule whose claims cannot all fit is one
    the simulator would happily price while skipping DRAM reads that
    must physically happen.
    """
    if report is None:
        report = DiagnosticReport(pass_name="flow.residency")
    if config is None:
        from repro.sched.scheduler import SchedulerConfig

        config = SchedulerConfig(verify="off")
    window = max(config.stream_window, 1)
    budget = int(hw.sram_capacity_bytes * config.keep_fraction)
    ranges = _live_ranges(steps)
    sizes: Dict[int, int] = {}
    for step in steps:
        _, outs = step.plan.boundary()
        for t in outs:
            sizes.setdefault(t.uid, t.bytes)
    for i, step in enumerate(steps):
        held = sum(
            sizes.get(uid, 0)
            for uid, (kept, claim) in sorted(ranges.items())
            if kept + window <= i < claim
        )
        if held > budget:
            report.emit(
                "F002",
                f"step {i} ({len(step.plan.ops)} ops)",
                f"kept ciphertexts provably pooled across this step "
                f"total {held} bytes but the keep budget is {budget} "
                f"({config.keep_fraction} of {hw.sram_capacity_bytes})",
            )
    return report


# ---------------------------------------------------------------------------
# F003 — rotation-key / evk reachability
# ---------------------------------------------------------------------------


class BasisMaterializationAnalysis(DataflowAnalysis[bool]):
    """Forward reachability: has a ModUp BConv touched this tensor?

    A key-switch inner product is only meaningful over the *extended*
    digit basis, which only a BConv materializes (Figure 1's ModUp).
    ``True`` means some predecessor chain contains a BConv.  With
    ``assume_boundary`` the producerless tensors seed ``True`` — the
    right reading for a partition segment whose ModUp ran in an
    upstream segment (and a vacuous one for a complete graph, where
    the strict ``False`` seed is what catches a skipped ModUp).
    """

    direction = Direction.FORWARD

    def __init__(self, assume_boundary: bool = False) -> None:
        super().__init__(BoolOrLattice())
        self.assume_boundary = assume_boundary

    def boundary(self, graph: OperatorGraph) -> Dict[int, bool]:
        """Producerless polynomials seed ``True`` in boundary mode."""
        if not self.assume_boundary:
            return {}
        return {
            t.uid: True
            for t in graph.tensors
            if graph.producer_of(t) is None and _is_poly_like(t)
        }

    def transfer(
        self, op: Operator, env: Mapping[int, bool]
    ) -> Dict[int, bool]:
        """Outputs are materialized iff the op is a BConv or an input is."""
        value = op.kind is OpKind.BCONV or any(
            env.get(t.uid, False) for t in op.inputs if _is_poly_like(t)
        )
        return {t.uid: value for t in op.outputs if _is_poly_like(t)}


def verify_key_reach(
    graph: OperatorGraph,
    steps: Optional[Sequence[Any]] = None,
    report: Optional[DiagnosticReport] = None,
    assume_boundary_materialized: bool = False,
) -> DiagnosticReport:
    """F003: every key-switch window has materialized operands.

    Graph half: each KSKInP digit produced *inside* the graph must have
    a ModUp BConv somewhere in its predecessor chain (EXTERNAL digits
    were materialized by an upstream partition segment and are exempt;
    ``assume_boundary_materialized`` extends the same reading to every
    producerless tensor — the scheduler gate sets it because it may be
    handed a partition segment rather than a complete graph).
    Schedule half: each step running a KSKInP must fetch the evk in
    that window or hold it from an earlier fetch (temporal sharing).
    """
    if report is None:
        report = DiagnosticReport(pass_name="flow.keyreach")
    result = BasisMaterializationAnalysis(
        assume_boundary=assume_boundary_materialized
    ).run(graph)
    env = result.values
    for op in graph.operators_topological():
        if op.kind is not OpKind.KSK_INP:
            continue
        for t in op.inputs:
            if t.kind is TensorKind.EVK:
                continue
            if not _is_poly_like(t) or t.kind is TensorKind.EXTERNAL:
                continue
            if not env.get(t.uid, False):
                report.emit(
                    "F003", _loc(op),
                    f"digit {t.name} reaches the inner product without a "
                    f"ModUp base conversion on any predecessor chain",
                )
    if steps is None:
        return report
    for i, step in enumerate(steps):
        for op in step.plan.ops:
            if op.kind is not OpKind.KSK_INP:
                continue
            for t in op.inputs:
                if t.kind is not TensorKind.EVK:
                    continue
                fetched = t.uid in step.plan.metrics.constant_bytes
                resident = t.uid in step.resident_constants
                if not fetched and not resident:
                    report.emit(
                        "F003",
                        f"step {i}: {_loc(op)}",
                        f"evk {t.name} is neither fetched by this window "
                        f"nor resident from an earlier fetch",
                    )
    return report


# ---------------------------------------------------------------------------
# F004 — dead / recomputed tensors across window boundaries
# ---------------------------------------------------------------------------


def verify_sharing(
    graph: OperatorGraph,
    steps: Optional[Sequence[Any]] = None,
    report: Optional[DiagnosticReport] = None,
    graph_level: bool = True,
) -> DiagnosticReport:
    """F004 (warnings): missed cross-operator sharing.

    Graph half (``graph_level``; skip it for partition segments, where
    a sibling may be consumed by a *later* segment): a multi-output
    operator with a strict subset of its outputs consumed computes (and
    a schedule writes back) dead sibling outputs.  Schedule half: two
    different windows computing an identical operator (same
    kind/signature/tag on the same input tensors) recompute what
    temporal sharing should have kept — ``.decomp`` digit extractions
    are exempt, since the positional slices of one source are
    structurally identical by design.
    """
    if report is None:
        report = DiagnosticReport(pass_name="flow.sharing")
    for op in graph.operators_topological() if graph_level else ():
        if len(op.outputs) < 2:
            continue
        consumed = [bool(graph.consumers_of(t)) for t in op.outputs]
        if any(consumed) and not all(consumed):
            dead = [
                t.name for t, used in zip(op.outputs, consumed) if not used
            ]
            report.emit(
                "F004", _loc(op),
                f"output(s) {', '.join(dead)} are computed but never "
                f"consumed while sibling outputs are",
            )
    if steps is None:
        return report
    seen: Dict[Tuple, Tuple[int, str]] = {}
    for i, step in enumerate(steps):
        for op in step.plan.ops:
            if ".decomp" in op.tag:
                continue
            key = (
                op.signature(), op.tag,
                tuple(t.uid for t in op.inputs),
            )
            prior = seen.get(key)
            if prior is None:
                seen[key] = (i, op.name)
            elif prior[0] != i:
                report.emit(
                    "F004",
                    f"step {i}: {_loc(op)}",
                    f"recomputes {prior[1]} from step {prior[0]} on the "
                    f"same inputs; temporal sharing should reuse it",
                )
    return report


# ---------------------------------------------------------------------------
# Front ends
# ---------------------------------------------------------------------------


def verify_flow_graph(graph: OperatorGraph) -> DiagnosticReport:
    """All graph-level F* analyses (F001, F003 graph half, F004 graph
    half) merged into one report."""
    report = DiagnosticReport(pass_name="flow")
    verify_levels(graph, report)
    verify_key_reach(graph, steps=None, report=report)
    verify_sharing(graph, steps=None, report=report)
    return report


def verify_flow_schedule(
    schedule: Any,
    hw: Any,
    graph: Optional[OperatorGraph] = None,
    config: Optional[Any] = None,
) -> DiagnosticReport:
    """All schedule-level F* analyses (F002, F003/F004 schedule halves).

    ``graph`` defaults to the graph of the first step's plan; passing
    it explicitly is only needed for empty schedules.  ``config`` is
    the scheduler configuration the schedule was built under (keep
    fraction and stream window feed the F002 charge model); it
    defaults to the stock ``SchedulerConfig``.
    """
    report = DiagnosticReport(pass_name="flow.schedule")
    steps = list(schedule.steps)
    if not steps:
        return report
    if graph is None:
        graph = steps[0].plan.graph
    if graph is None:
        raise InvariantViolation(
            "repro.analysis.flow.verify_flow_schedule",
            "schedule steps carry no graph reference",
        )
    hw_cfg = getattr(hw, "sram_capacity_bytes", None)
    if hw_cfg is None:
        raise InvariantViolation(
            "repro.analysis.flow.verify_flow_schedule",
            f"{hw!r} has no sram_capacity_bytes",
        )
    verify_residency(steps, hw, report, config=config)
    verify_key_reach(graph, steps, report)
    verify_sharing(graph, steps, report)
    return report
