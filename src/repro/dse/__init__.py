"""Design-space exploration: persistent caching and parallel sweeps.

CROPHE's results come from sweeping a large cross-operator dataflow
space; the expensive inner step — the DP schedule search — recurs on
identical (graph, hardware, dataflow, knobs) tuples across cells, runs,
and machines.  This package eliminates the recomputation:

* :mod:`repro.dse.fingerprint` — canonical content-addressed keys over
  (graph structural hash, FHE params, hardware, scheduler knobs,
  dataflow variant, format-version salt).  Fingerprints never embed
  process-dependent state (operator uids, object ids, clock values).
* :mod:`repro.dse.cache` — two-tier artifact cache: a per-process
  in-memory tier in front of an optional on-disk JSON store (atomic
  renames, corrupt entries degrade to misses with a typed
  :class:`~repro.resilience.errors.CacheError` warning, hit/miss/
  corruption counters through :mod:`repro.obs`).
* :mod:`repro.dse.sweep` — declarative sweep specs sharded
  deterministically across crash-isolated workers
  (:mod:`repro.resilience.isolation`), streaming into a resumable
  artifact.  Imported lazily: it depends on :mod:`repro.experiments`,
  which itself uses the cache layer.

``python -m repro.dse`` exposes ``run`` / ``stat`` / ``ls`` / ``gc``.
"""

from repro.dse.cache import ArtifactCache, CACHE, aggregate_stats
from repro.dse.fingerprint import (
    FORMAT_VERSION,
    canonical_json,
    digest,
    graph_fingerprint,
    result_fingerprint,
    schedule_fingerprint,
)

__all__ = [
    "ArtifactCache",
    "CACHE",
    "FORMAT_VERSION",
    "aggregate_stats",
    "canonical_json",
    "digest",
    "graph_fingerprint",
    "result_fingerprint",
    "schedule_fingerprint",
]
