"""Canonical content-addressed fingerprints for DSE artifacts.

A fingerprint is the sha256 of a canonical JSON rendering (sorted keys,
no whitespace) of everything that determines an artifact's value — and
*nothing* that does not.  In particular no process-dependent state may
leak in: operator and tensor uids come from a global counter and differ
between processes, so graph identity uses the structural
``subgraph_signature`` over the deterministic topological order plus a
uid-free description of input/constant sharing.

Every payload carries :data:`FORMAT_VERSION` as a salt, so a format
change invalidates the whole store at once instead of mixing schemas.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, Optional, Tuple

from repro.fhe.params import CKKSParams
from repro.hw.config import HardwareConfig
from repro.ir.graph import OperatorGraph
from repro.sched.scheduler import SchedulerConfig

__all__ = [
    "FORMAT_VERSION",
    "canonical_json",
    "digest",
    "config_payload",
    "graph_fingerprint",
    "hw_payload",
    "params_payload",
    "result_fingerprint",
    "schedule_fingerprint",
]

#: Salt baked into every fingerprint and on-disk envelope.  Bump on any
#: change to payload composition or serialized artifact schema: old
#: entries then read as stale and degrade to misses (never mis-hits).
FORMAT_VERSION = 1

#: Memoization slot stashed on graph objects (builds are memoized and
#: graphs immutable once built, so the structural hash is stable).
_GRAPH_FP_ATTR = "_dse_fingerprint"


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as canonical JSON (sorted keys, compact)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_coerce
    )


def _coerce(obj: Any) -> Any:
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    from repro.resilience.errors import InvariantViolation

    raise InvariantViolation(
        "repro.dse.fingerprint.canonical_json",
        f"not canonically serializable: {type(obj).__name__}",
    )


def digest(payload: Any) -> str:
    """sha256 hex digest of the canonical JSON rendering."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def hw_payload(hw: HardwareConfig) -> Dict[str, Any]:
    """Every cost-relevant hardware field (the full frozen dataclass)."""
    return asdict(hw)


def params_payload(params: CKKSParams) -> Dict[str, Any]:
    """Every field of the CKKS parameter set."""
    return asdict(params)


def config_payload(config: SchedulerConfig) -> Dict[str, Any]:
    """Every scheduler knob, including search budgets and the verify
    gate — two searches under different budgets may legitimately land on
    different (degraded vs optimal) schedules.  ``sched_jobs`` is
    excluded: frontier pricing is deterministic by construction (serial
    budget charge, ordered apply), so the thread count cannot change the
    schedule and must not fork the cache key."""
    payload = asdict(config)
    payload.pop("sched_jobs", None)
    return payload


def graph_fingerprint(graph: OperatorGraph) -> str:
    """Structural hash of an operator graph, uid-free and memoized.

    Combines the window :meth:`~repro.ir.graph.OperatorGraph.
    subgraph_signature` over the full topological order (operator
    structure + internal producer/consumer edges by local index) with a
    description of *input sharing*: which producerless tensors
    (constants, external inputs) feed which operators.  Sharing matters
    to cost — a constant consumed by two operators is fetched once —
    but is invisible to the edge signature alone.
    """
    cached = getattr(graph, _GRAPH_FP_ATTR, None)
    if cached is not None:
        return cached
    order = graph.operators_topological()
    index = {op.uid: i for i, op in enumerate(order)}
    shared = []
    for tensor in graph.tensors:
        if graph.producer_of(tensor) is not None:
            continue
        consumers = sorted(index[op.uid] for op in graph.consumers_of(tensor))
        shared.append([tensor.kind.value, tensor.bytes, consumers])
    shared.sort()
    fp = digest({
        "signature": graph.subgraph_signature(tuple(order)),
        "shared_inputs": shared,
    })
    setattr(graph, _GRAPH_FP_ATTR, fp)
    return fp


def schedule_fingerprint(
    graph: OperatorGraph,
    hw: HardwareConfig,
    dataflow: str,
    config: SchedulerConfig,
    n_split: Optional[Tuple[int, int]],
) -> str:
    """Key for one segment schedule: everything the DP search reads."""
    return digest({
        "kind": "schedule",
        "version": FORMAT_VERSION,
        "graph": graph_fingerprint(graph),
        "hw": hw_payload(hw),
        "dataflow": dataflow,
        "scheduler": config_payload(config),
        "n_split": list(n_split) if n_split else None,
    })


def result_fingerprint(
    design_payload: Dict[str, Any],
    workload: str,
    params: CKKSParams,
    config: SchedulerConfig,
) -> str:
    """Key for one full (design, workload, params) evaluation.

    ``design_payload`` describes the :class:`~repro.experiments.common.
    DesignPoint` (dataflow knobs + hardware payload); the graph hash is
    deliberately absent — graphs are *derived* from (workload, params,
    design) by deterministic builders, and hashing at this level lets a
    warm run skip building them entirely.
    """
    return digest({
        "kind": "result",
        "version": FORMAT_VERSION,
        "workload": workload,
        "params": params_payload(params),
        "design": design_payload,
        "scheduler": config_payload(config),
    })
