"""The persistent content-addressed artifact cache.

Two tiers behind one interface:

* an **in-memory tier** (per process, always on) — the replacement for
  the ad-hoc module dicts the experiment pipeline used to keep;
* an optional **on-disk tier** — a content-addressed JSON store laid
  out as ``<root>/<kind>/<fp[:2]>/<fp>.json``, written via temp-file +
  atomic rename so readers never observe a half-written entry.

Robustness contract (tested): a truncated file, garbage JSON, a stale
:data:`~repro.dse.fingerprint.FORMAT_VERSION`, or a kind/fingerprint
mismatch **degrades to a miss** — a :class:`~repro.resilience.errors.
CacheError` warning is emitted, ``dse.cache.corrupt`` is counted, and
the caller recomputes.  The cache never crashes an evaluation.  The
offending file is **quarantined** to ``<root>/quarantine/`` on the
first failed read, so later runs see a clean miss instead of
re-parsing and re-warning about the same bad bytes; the recompute's
``put`` repairs the entry in place.

For chaos drills, :meth:`ArtifactCache.inject_read_fault` arms
deterministic read faults: the next matching lookup is treated
exactly like an on-disk corruption (warned, counted, quarantined,
degraded to a miss) — this is the hook the serving simulator's fault
plane (``repro.serve.faults``) drives.

Because evaluations run in crash-isolated child processes (which never
run ``atexit`` handlers — they exit via ``os._exit``), per-process hit/
miss counts are flushed eagerly to small sidecar files under
``<root>/stats/``; :func:`aggregate_stats` sums them so the runner can
report a whole run's cache behaviour in ``--metrics-json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import uuid
import warnings
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.dse.fingerprint import FORMAT_VERSION
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience.errors import CacheError

__all__ = [
    "ArtifactCache",
    "CACHE",
    "CacheEntry",
    "aggregate_stats",
    "gc_cache",
    "scan_entries",
]

#: Environment variable naming the on-disk cache root.  Read *per
#: operation* (not at import) so the experiment runner — and the forked
#: cell subprocesses that inherit its environment — can point the
#: shared :data:`CACHE` at a directory with ``--cache-dir``.
CACHE_ENV = "REPRO_DSE_CACHE"

#: Artifact kinds the store recognises.
KINDS = ("result", "schedule", "plan")

_STAT_KEYS = ("hits", "misses", "writes", "corrupt", "evictions")

#: Sentinel: resolve the disk root dynamically from :data:`CACHE_ENV`.
_ENV = object()


class CacheEntry:
    """One on-disk entry as seen by ``scan``/``ls``/``gc``."""

    __slots__ = ("kind", "fingerprint", "path", "ok", "reason", "meta")

    def __init__(
        self,
        kind: str,
        fingerprint: str,
        path: str,
        ok: bool,
        reason: str,
        meta: Dict[str, Any],
    ):
        self.kind = kind
        self.fingerprint = fingerprint
        self.path = path
        self.ok = ok
        self.reason = reason
        self.meta = meta


class ArtifactCache:
    """Content-addressed artifact store with an in-memory front tier.

    Args:
        root: on-disk root directory; ``None`` for a memory-only cache.
            The module-level :data:`CACHE` instead resolves its root
            from :data:`CACHE_ENV` on every call.
        salt: format-version stamp for envelopes (tests inject stale
            values; production code leaves the default).
    """

    def __init__(self, root: Optional[str] = None, salt: int = FORMAT_VERSION):
        self._root = root
        self.salt = salt
        self._memory: Dict[Tuple[str, str], Any] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._stats_token: Optional[str] = None
        self._armed_faults: List[Dict[str, Any]] = []
        self.stats: Dict[str, int] = {k: 0 for k in _STAT_KEYS}

    # -- tier plumbing -------------------------------------------------

    @property
    def root(self) -> Optional[str]:
        """The disk-tier root, or ``None`` when memory-only."""
        if self._root is _ENV:
            return os.environ.get(CACHE_ENV, "").strip() or None
        return self._root

    def entry_path(self, kind: str, fingerprint: str) -> Optional[str]:
        """Where the disk tier stores one entry (``None`` if no disk)."""
        root = self.root
        if root is None:
            return None
        return os.path.join(root, kind, fingerprint[:2], f"{fingerprint}.json")

    def _after_fork(self) -> None:
        """Forked children inherit the parent's counters and sidecar
        token; zero them so child sidecars report only the child's own
        activity (the parent flushes its own)."""
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._stats_token = None
            for key in _STAT_KEYS:
                self.stats[key] = 0

    def _bump(self, stat: str, amount: int = 1) -> None:
        self._after_fork()
        self.stats[stat] += amount
        if _METRICS.enabled:
            _METRICS.counter(f"dse.cache.{stat}").inc(amount)

    def bump(self, stat: str, amount: int = 1) -> None:
        """Count an event on behalf of a layered front tier.

        The evaluation pipeline keeps *live* schedule/result objects in
        front of this cache (documents cannot hold live plan objects);
        a hit there is still a cache hit and is counted through here so
        the ``dse.cache.*`` counters describe the whole hierarchy.
        """
        if stat not in self.stats:
            raise CacheError(
                f"unknown cache stat {stat!r}", reason="bad-stat"
            )
        self._bump(stat, amount)

    # -- fault injection -----------------------------------------------

    def inject_read_fault(
        self,
        kind: Optional[str] = None,
        fingerprint: Optional[str] = None,
        reason: str = "injected-corruption",
        count: int = 1,
    ) -> None:
        """Arm ``count`` deterministic read faults.

        The next ``count`` :meth:`get` calls matching ``kind`` /
        ``fingerprint`` (``None`` matches anything) behave exactly
        like a corrupt on-disk entry: the lookup degrades to a miss
        with a :class:`CacheError` warning, ``dse.cache.corrupt`` is
        counted, the memory-tier entry is dropped, and any disk file
        is quarantined.  This is the chaos hook the serving fault
        plane uses; because arming is explicit and consumption is
        in-order, injected corruption is fully replayable.
        """
        with self._lock:
            self._armed_faults.append(
                {"kind": kind, "fingerprint": fingerprint,
                 "reason": reason, "count": int(count)}
            )

    def _consume_fault(self, kind: str, fingerprint: str) -> Optional[str]:
        """Pop one matching armed fault; its reason, or ``None``."""
        with self._lock:
            for fault in self._armed_faults:
                if fault["kind"] not in (None, kind):
                    continue
                if fault["fingerprint"] not in (None, fingerprint):
                    continue
                fault["count"] -= 1
                if fault["count"] <= 0:
                    self._armed_faults.remove(fault)
                return str(fault["reason"])
        return None

    # -- read/write ----------------------------------------------------

    def get(self, kind: str, fingerprint: str) -> Optional[Any]:
        """Look up one artifact payload; ``None`` on a miss.

        Memory tier first, then disk.  Any unreadable or untrustworthy
        disk entry is treated as a miss after a :class:`CacheError`
        warning and a ``dse.cache.corrupt`` count — never an exception.
        """
        if self._armed_faults:
            reason = self._consume_fault(kind, fingerprint)
            if reason is not None:
                with self._lock:
                    self._memory.pop((kind, fingerprint), None)
                path = self.entry_path(kind, fingerprint)
                self._corrupt(path or f"<memory:{kind}/{fingerprint}>",
                              reason)
                self._bump("misses")
                return None
        with self._lock:
            payload = self._memory.get((kind, fingerprint))
        if payload is not None:
            self._bump("hits")
            return payload
        path = self.entry_path(kind, fingerprint)
        if path is not None and os.path.exists(path):
            payload = self._read_entry(kind, fingerprint, path)
            if payload is not None:
                with self._lock:
                    self._memory[(kind, fingerprint)] = payload
                self._bump("hits")
                return payload
        self._bump("misses")
        return None

    def _read_entry(
        self, kind: str, fingerprint: str, path: str
    ) -> Optional[Any]:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                envelope = json.load(fp)
        except ValueError:
            self._corrupt(path, "garbage-json")
            return None
        except OSError as exc:
            self._corrupt(path, f"unreadable: {exc}")
            return None
        reason = _envelope_problem(envelope, kind, fingerprint, self.salt)
        if reason is not None:
            self._corrupt(path, reason)
            return None
        return envelope["payload"]

    def _corrupt(self, path: str, reason: str) -> None:
        self._bump("corrupt")
        quarantined = self._quarantine(path)
        message = "discarding untrusted cache entry (treated as a miss)"
        if quarantined is not None:
            message += f"; quarantined to {quarantined}"
        warnings.warn(
            CacheError(message, path=path, reason=reason),
            stacklevel=4,
        )

    def _quarantine(self, path: str) -> Optional[str]:
        """Move a bad entry to ``<root>/quarantine/`` (best effort).

        Quarantining is what keeps corruption a *one-time* incident:
        the next lookup sees a clean miss (no file, no re-parse, no
        repeat warning) and the recompute's ``put`` writes a fresh
        entry at the original address.  Returns the destination, or
        ``None`` when there was nothing on disk to move.
        """
        root = self.root
        if not root or not path:
            return None
        try:
            if not os.path.isfile(path):
                return None
            quarantine_dir = os.path.join(root, "quarantine")
            os.makedirs(quarantine_dir, exist_ok=True)
            base = os.path.basename(path)
            dest = os.path.join(quarantine_dir, base)
            suffix = 1
            while os.path.exists(dest):
                dest = os.path.join(quarantine_dir, f"{base}.{suffix}")
                suffix += 1
            os.replace(path, dest)
            return dest
        except OSError:
            return None  # an unmovable file must not fail the lookup

    def put(
        self,
        kind: str,
        fingerprint: str,
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store one artifact in both tiers (disk tier best-effort)."""
        with self._lock:
            self._memory[(kind, fingerprint)] = payload
        self._bump("writes")
        path = self.entry_path(kind, fingerprint)
        if path is None:
            return
        envelope = {
            "version": self.salt,
            "kind": kind,
            "fingerprint": fingerprint,
            "meta": meta or {},
            "payload": payload,
        }
        try:
            _atomic_write_json(path, envelope)
        except OSError as exc:
            # A full or read-only disk degrades persistence, not runs.
            warnings.warn(
                CacheError(
                    "cache write failed (entry kept in memory only)",
                    path=path,
                    reason=str(exc),
                ),
                stacklevel=3,
            )

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    # -- stats ---------------------------------------------------------

    def flush_stats(self) -> None:
        """Persist this process's counters to its stats sidecar.

        Called eagerly after each evaluation because forked workers
        bypass ``atexit``.  Idempotent: the sidecar is rewritten in
        place (one file per process) with cumulative counts.
        """
        self._after_fork()
        root = self.root
        if root is None or not any(self.stats.values()):
            return
        if self._stats_token is None:
            self._stats_token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        path = os.path.join(root, "stats", f"{self._stats_token}.json")
        try:
            _atomic_write_json(path, dict(self.stats))
        except OSError:
            pass  # stats are advisory; never fail an evaluation


def _envelope_problem(
    envelope: Any, kind: str, fingerprint: str, salt: int
) -> Optional[str]:
    """Why an envelope cannot be trusted (``None`` when it can)."""
    if not isinstance(envelope, dict):
        return "not-an-object"
    if envelope.get("version") != salt:
        return f"stale-version: {envelope.get('version')!r} != {salt}"
    if envelope.get("kind") != kind or envelope.get("fingerprint") != fingerprint:
        return "address-mismatch"
    if "payload" not in envelope:
        return "truncated"
    return None


def _atomic_write_json(path: str, document: Any) -> None:
    """Temp-file + rename so concurrent readers never see partial JSON."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fp:
            # dumps() takes the C-accelerated encoder; dump() streams
            # through the pure-Python one — measurably slower for the
            # thousands of plan-skeleton writes a cold search makes.
            fp.write(json.dumps(document, sort_keys=True))
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


#: The process-wide cache the evaluation pipeline talks to.  Memory tier
#: always on; the disk tier follows :data:`CACHE_ENV` dynamically.
CACHE = ArtifactCache(root=_ENV)  # type: ignore[arg-type]


# ---------------------------------------------------------------------
# Store maintenance (python -m repro.dse stat/ls/gc)
# ---------------------------------------------------------------------


def scan_entries(root: str) -> Iterator[CacheEntry]:
    """Walk a cache root yielding every entry with its validity."""
    for kind in KINDS:
        kind_dir = os.path.join(root, kind)
        if not os.path.isdir(kind_dir):
            continue
        for shard in sorted(os.listdir(kind_dir)):
            shard_dir = os.path.join(kind_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                fingerprint = name[: -len(".json")]
                try:
                    with open(path, "r", encoding="utf-8") as fp:
                        envelope = json.load(fp)
                except (OSError, ValueError):
                    yield CacheEntry(kind, fingerprint, path, False,
                                     "garbage-json", {})
                    continue
                reason = _envelope_problem(
                    envelope, kind, fingerprint, FORMAT_VERSION
                )
                meta = (
                    envelope.get("meta", {})
                    if isinstance(envelope, dict) else {}
                )
                yield CacheEntry(
                    kind, fingerprint, path, reason is None,
                    reason or "", meta if isinstance(meta, dict) else {},
                )


def gc_cache(root: str, cache: Optional[ArtifactCache] = None) -> int:
    """Remove every invalid (corrupt/stale/mismatched) entry.

    Returns the eviction count; counted as ``dse.cache.evictions`` on
    ``cache`` (the shared :data:`CACHE` by default).
    """
    cache = cache if cache is not None else CACHE
    evicted = 0
    for entry in scan_entries(root):
        if entry.ok:
            continue
        try:
            os.unlink(entry.path)
        except OSError:
            continue
        evicted += 1
    if evicted:
        cache._bump("evictions", evicted)
        cache.flush_stats()
    return evicted


def aggregate_stats(root: Optional[str]) -> Dict[str, int]:
    """Sum every process's stats sidecar under ``root``."""
    totals = {k: 0 for k in _STAT_KEYS}
    if not root:
        return totals
    stats_dir = os.path.join(root, "stats")
    if not os.path.isdir(stats_dir):
        return totals
    for name in sorted(os.listdir(stats_dir)):
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(stats_dir, name), encoding="utf-8") as fp:
                doc = json.load(fp)
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict):
            continue
        for key in _STAT_KEYS:
            value = doc.get(key, 0)
            if isinstance(value, int):
                totals[key] += value
    return totals
