"""The parallel sweep executor.

A :class:`SweepSpec` declares a design-space slice — a grid over
baseline pairings × workloads (the Figure 9 axes), or an explicit
:class:`~repro.experiments.common.DesignPoint` list — and expands it
into a sorted list of :class:`SweepTask`\\ s.  :func:`run_sweep` shards
the tasks **deterministically** (task ``i`` of the sorted order goes to
worker ``i % jobs``) and runs each in a crash-isolated subprocess via
:func:`~repro.resilience.isolation.run_isolated`, inheriting its
timeout/retry/degraded-fallback semantics.  Outcomes stream into a
resumable :class:`SweepArtifact`.

Determinism contract (tested): the artifact contains no wall-clock or
attempt-count fields, every task's document is produced by the same
deterministic pipeline, and the artifact is written with sorted keys —
so ``--jobs 1`` and ``--jobs 4`` produce byte-identical artifacts, and
a warm second run is 100% cache hits.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dse.cache import CACHE_ENV, aggregate_stats
from repro.experiments.common import (
    DesignPoint,
    default_scheduler_config,
    evaluate_workload,
)
from repro.fhe.params import CKKSParams, parameter_set
from repro.resilience.backoff import DEFAULT_BACKOFF, BackoffPolicy
from repro.resilience.errors import ConfigError
from repro.resilience.isolation import CellStatus, run_isolated, classify_error

__all__ = [
    "SweepArtifact",
    "SweepReport",
    "SweepSpec",
    "SweepTask",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepTask:
    """One evaluation: a design on a workload at a parameter set."""

    task_id: str
    point: DesignPoint
    workload: str
    params: CKKSParams


@dataclass
class SweepSpec:
    """Declarative description of one sweep.

    Attributes:
        name: sweep label (artifact metadata only).
        pairings: baseline pairings to expand via the Figure 9 design
            grid (each pairing contributes its four designs at its
            Table III parameter set).  Ignored when ``designs`` given.
        workloads: workload names (see ``repro.workloads``).
        param_set: parameter-set name overriding the per-pairing
            default; required with explicit ``designs``.
        designs: explicit design points instead of the pairing grid.
    """

    name: str = "sweep"
    pairings: Tuple[str, ...] = ("SHARP",)
    workloads: Tuple[str, ...] = ("bootstrapping",)
    param_set: Optional[str] = None
    designs: Tuple[DesignPoint, ...] = ()

    def tasks(self) -> List[SweepTask]:
        """Expand to the sorted task list (the sharding order)."""
        out: List[SweepTask] = []
        if self.designs:
            if self.param_set is None:
                raise ConfigError(
                    "param_set", None,
                    "explicit design lists need a parameter-set name",
                )
            params = parameter_set(self.param_set)
            for point in self.designs:
                for workload in self.workloads:
                    out.append(SweepTask(
                        f"{point.label}/{workload}", point, workload, params
                    ))
        else:
            # Imported here: repro.experiments.fig9 imports this
            # package's cache layer via the shared pipeline.
            from repro.experiments.fig9 import PAIRING_PARAMS, design_points

            for pairing in self.pairings:
                if pairing not in PAIRING_PARAMS:
                    raise ConfigError(
                        "pairings", pairing,
                        f"unknown pairing; known: {sorted(PAIRING_PARAMS)}",
                    )
                params = parameter_set(
                    self.param_set or PAIRING_PARAMS[pairing]
                )
                for point in design_points(pairing):
                    for workload in self.workloads:
                        out.append(SweepTask(
                            f"{pairing}/{point.label}/{workload}",
                            point, workload, params,
                        ))
        out.sort(key=lambda t: t.task_id)
        seen: Dict[str, SweepTask] = {}
        for task in out:
            if task.task_id in seen:
                raise ConfigError(
                    "designs", task.task_id, "duplicate task id in sweep"
                )
            seen[task.task_id] = task
        return out

    def to_doc(self) -> Dict[str, Any]:
        """Artifact metadata (grid specs only; explicit designs are
        recorded by label)."""
        return {
            "name": self.name,
            "pairings": list(self.pairings),
            "workloads": list(self.workloads),
            "param_set": self.param_set,
            "designs": [p.label for p in self.designs],
        }


@dataclass
class SweepArtifact:
    """Resumable, deterministic record of one sweep.

    Unlike :class:`~repro.resilience.isolation.RunArtifact` this
    document carries **no timing fields** — only deterministic task
    outcomes — so identical sweeps produce identical bytes regardless
    of job count or machine speed.
    """

    path: str
    spec_doc: Dict[str, Any] = field(default_factory=dict)
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @staticmethod
    def load(path: str) -> "SweepArtifact":
        """Load an artifact, tolerating a missing or corrupt file."""
        artifact = SweepArtifact(path=path)
        try:
            with open(path, encoding="utf-8") as fp:
                doc = json.load(fp)
        except (OSError, ValueError):
            return artifact
        if isinstance(doc, dict):
            spec = doc.get("spec", {})
            artifact.spec_doc = spec if isinstance(spec, dict) else {}
            tasks = doc.get("tasks", {})
            if isinstance(tasks, dict):
                artifact.tasks = {
                    str(k): v for k, v in tasks.items() if isinstance(v, dict)
                }
        return artifact

    def completed(self, task_id: str) -> bool:
        """Whether a task already succeeded (resume skips it)."""
        entry = self.tasks.get(task_id)
        return entry is not None and entry.get("status") == "ok"

    def record(self, task_id: str, entry: Dict[str, Any]) -> None:
        """Store one outcome and persist atomically."""
        self.tasks[task_id] = entry
        self.save()

    def save(self) -> None:
        """Atomically write the artifact (sorted keys: byte-stable)."""
        doc = {
            "version": 1,
            "kind": "dse-sweep",
            "spec": self.spec_doc,
            "tasks": self.tasks,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".sweep.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                json.dump(doc, fp, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)


@dataclass
class SweepReport:
    """What :func:`run_sweep` hands back to callers and the CLI."""

    artifact: SweepArtifact
    statuses: Dict[str, CellStatus]
    cache_stats: Dict[str, int]
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.statuses.values())

    @property
    def hit_rate(self) -> Optional[float]:
        """Fraction of cache lookups served (None without lookups)."""
        lookups = self.cache_stats.get("hits", 0) + self.cache_stats.get(
            "misses", 0
        )
        if not lookups:
            return None
        return self.cache_stats["hits"] / lookups

    def render(self) -> str:
        """Human-readable per-task status list plus cache summary."""
        lines = []
        for task_id in sorted(self.statuses):
            status = self.statuses[task_id]
            line = f"{task_id:<40} {status.status}"
            if status.status not in ("ok", "skipped"):
                line += f" [{status.error_kind}] {status.error}"
            lines.append(line)
        hits = self.cache_stats.get("hits", 0)
        misses = self.cache_stats.get("misses", 0)
        rate = self.hit_rate
        lines.append(
            f"cache: {hits} hits / {misses} misses"
            + (f" ({rate:.0%} hit rate)" if rate is not None else "")
        )
        if self.skipped:
            lines.append(f"resumed: {self.skipped} tasks already complete")
        return "\n".join(lines)


def _maybe_crash(task_id: str) -> None:
    """Fault-injection hook: hard-kill the worker for the named tasks.

    ``REPRO_SWEEP_CRASH`` holds comma-separated task ids; a matching
    worker dies via ``os._exit`` *before* evaluating — the same
    signature as an OOM kill mid-cell.  Used by the crash-recovery
    tests and chaos drills; clearing the variable lets a resumed sweep
    complete normally.
    """
    forced = os.environ.get("REPRO_SWEEP_CRASH", "")
    if task_id in {c.strip() for c in forced.split(",") if c.strip()}:
        os._exit(41)


def _task_worker(
    task_id: str, point: DesignPoint, workload: str, params: CKKSParams
) -> str:
    """Isolated task body: evaluate and return the result document.

    Returns a JSON string because :func:`run_isolated` ships text over
    the status pipe; the parent parses it back into the artifact.
    """
    from repro.sched.serialize import eval_result_to_doc

    _maybe_crash(task_id)
    result = evaluate_workload(
        point, workload, params, scheduler_config=default_scheduler_config()
    )
    return json.dumps(eval_result_to_doc(result), sort_keys=True)


def _entry_for(status: CellStatus) -> Dict[str, Any]:
    """Artifact entry for one outcome: deterministic fields only."""
    entry: Dict[str, Any] = {"status": status.status}
    if status.status == "ok":
        try:
            entry["result"] = json.loads(status.output)
        except ValueError:
            entry["status"] = "failed"
            entry["error_kind"] = "error"
            entry["error"] = "worker returned unparseable result document"
    else:
        entry["error_kind"] = status.error_kind
        entry["error"] = status.error
    return entry


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    artifact_path: str = "dse_sweep.json",
    resume: bool = False,
    timeout: Optional[float] = None,
    retries: int = 1,
    isolated: bool = True,
    sched_jobs: Optional[int] = None,
    backoff: Optional[BackoffPolicy] = DEFAULT_BACKOFF,
) -> SweepReport:
    """Execute a sweep across a deterministic worker pool.

    Workers are OS processes (forked per task by ``run_isolated``, so a
    crash or timeout costs one task); the ``jobs`` threads here only
    orchestrate.  ``cache_dir`` points the content-addressed cache at a
    directory, shared by every worker through the environment; the
    report carries the hit/miss delta this sweep produced there.
    ``sched_jobs`` threads each DP frontier's pricing *inside* every
    worker (``REPRO_SCHED_JOBS``); schedules — and therefore artifacts
    — are byte-identical at any value.  Transient worker failures
    (crashes, timeouts) are retried after a ``backoff`` delay with
    jitter seeded from the task id, so a shard of workers tripping
    over the same shared resource does not retry in lockstep.
    """
    if jobs < 1:
        raise ConfigError("jobs", jobs, "need at least one worker")
    if sched_jobs is not None:
        if sched_jobs < 1:
            raise ConfigError(
                "sched_jobs", sched_jobs, "need at least one thread"
            )
        os.environ["REPRO_SCHED_JOBS"] = str(sched_jobs)
    if cache_dir:
        os.environ[CACHE_ENV] = cache_dir
    tasks = spec.tasks()
    artifact = (
        SweepArtifact.load(artifact_path) if resume
        else SweepArtifact(path=artifact_path)
    )
    artifact.spec_doc = spec.to_doc()
    stats_before = aggregate_stats(cache_dir)
    statuses: Dict[str, CellStatus] = {}
    skipped = 0
    lock = threading.Lock()

    def _run_one(task: SweepTask) -> None:
        nonlocal skipped
        if resume and artifact.completed(task.task_id):
            with lock:
                skipped += 1
                statuses[task.task_id] = CellStatus(
                    name=task.task_id, status="skipped"
                )
            return
        if isolated:
            status = run_isolated(
                task.task_id, _task_worker,
                args=(task.task_id, task.point, task.workload, task.params),
                timeout=timeout, retries=retries, backoff=backoff,
            )
        else:
            try:
                output = _task_worker(
                    task.task_id, task.point, task.workload, task.params
                )
                status = CellStatus(
                    name=task.task_id, status="ok", output=output
                )
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                status = CellStatus(
                    name=task.task_id, status="failed",
                    error_kind=classify_error(exc), error=str(exc),
                )
        with lock:
            statuses[task.task_id] = status
            artifact.record(task.task_id, _entry_for(status))

    def _run_shard(shard: List[SweepTask]) -> None:
        for task in shard:
            _run_one(task)

    shards = [tasks[i::jobs] for i in range(jobs)]
    if jobs == 1:
        _run_shard(shards[0])
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for future in [pool.submit(_run_shard, s) for s in shards]:
                future.result()
    if not isolated:
        # In-process evaluations count on the shared cache object;
        # flush so the sidecar delta below sees them.
        from repro.dse.cache import CACHE

        CACHE.flush_stats()
    stats_after = aggregate_stats(cache_dir)
    delta = {
        key: stats_after.get(key, 0) - stats_before.get(key, 0)
        for key in stats_after
    }
    return SweepReport(
        artifact=artifact, statuses=statuses, cache_stats=delta,
        skipped=skipped,
    )
