"""Command-line interface for the DSE layer.

::

    python -m repro.dse run  --pairings SHARP --workloads bootstrapping \\
        --jobs 4 --cache-dir .dse-cache
    python -m repro.dse stat --cache-dir .dse-cache
    python -m repro.dse ls   --cache-dir .dse-cache
    python -m repro.dse gc   --cache-dir .dse-cache

``stat``/``ls``/``gc`` default their root to the ``REPRO_DSE_CACHE``
environment variable, matching the runner's ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.dse.cache import CACHE_ENV, aggregate_stats, gc_cache, scan_entries
from repro.resilience.errors import ReproError

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_CONFIG = 2


def _resolve_root(cache_dir: Optional[str]) -> Optional[str]:
    return cache_dir or os.environ.get(CACHE_ENV, "").strip() or None


def _cmd_run(args: argparse.Namespace) -> int:
    # Imported here: the sweep layer pulls in the whole experiment
    # pipeline, which stat/ls/gc invocations should not pay for.
    from repro.dse.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name=args.name,
        pairings=tuple(args.pairings.split(",")),
        workloads=tuple(args.workloads.split(",")),
        param_set=args.param_set,
    )
    report = run_sweep(
        spec,
        jobs=args.jobs,
        sched_jobs=args.sched_jobs,
        cache_dir=args.cache_dir,
        artifact_path=args.artifact,
        resume=args.resume,
        timeout=args.timeout,
        retries=args.retries,
        isolated=not args.no_isolation,
    )
    print(report.render())
    print(f"artifact: {report.artifact.path}")
    return EXIT_OK if report.ok else EXIT_FAILED


def _cmd_stat(args: argparse.Namespace) -> int:
    root = _resolve_root(args.cache_dir)
    if root is None:
        print(f"no cache root (pass --cache-dir or set {CACHE_ENV})",
              file=sys.stderr)
        return EXIT_CONFIG
    per_kind = {}
    invalid = 0
    total_bytes = 0
    for entry in scan_entries(root):
        info = per_kind.setdefault(entry.kind, {"entries": 0, "bytes": 0})
        info["entries"] += 1
        try:
            size = os.path.getsize(entry.path)
        except OSError:
            size = 0
        info["bytes"] += size
        total_bytes += size
        if not entry.ok:
            invalid += 1
    print(f"cache root: {root}")
    for kind in sorted(per_kind):
        info = per_kind[kind]
        print(f"  {kind:<9} {info['entries']:>6} entries  "
              f"{info['bytes'] / 1024:.1f} KiB")
    print(f"  total     {sum(i['entries'] for i in per_kind.values()):>6} "
          f"entries  {total_bytes / 1024:.1f} KiB  ({invalid} invalid)")
    stats = aggregate_stats(root)
    print("session counters (all processes):")
    for key in sorted(stats):
        print(f"  dse.cache.{key:<10} {stats[key]}")
    return EXIT_OK


def _cmd_ls(args: argparse.Namespace) -> int:
    root = _resolve_root(args.cache_dir)
    if root is None:
        print(f"no cache root (pass --cache-dir or set {CACHE_ENV})",
              file=sys.stderr)
        return EXIT_CONFIG
    for entry in scan_entries(root):
        label = entry.meta.get("label", "")
        workload = entry.meta.get("workload", "")
        state = "ok" if entry.ok else f"INVALID({entry.reason})"
        desc = " ".join(x for x in (label, workload) if x)
        print(f"{entry.kind:<9} {entry.fingerprint[:12]}  {state:<8} {desc}")
    return EXIT_OK


def _cmd_gc(args: argparse.Namespace) -> int:
    root = _resolve_root(args.cache_dir)
    if root is None:
        print(f"no cache root (pass --cache-dir or set {CACHE_ENV})",
              file=sys.stderr)
        return EXIT_CONFIG
    evicted = gc_cache(root)
    print(f"evicted {evicted} invalid entries from {root}")
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.dse`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Design-space exploration: sweeps and cache upkeep.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a sweep")
    run.add_argument("--name", default="sweep", help="sweep label")
    run.add_argument("--pairings", default="SHARP",
                     help="comma-separated baseline pairings")
    run.add_argument("--workloads", default="bootstrapping",
                     help="comma-separated workload names")
    run.add_argument("--param-set", default=None,
                     help="parameter-set name overriding pairing defaults")
    run.add_argument("--jobs", type=int, default=1,
                     help="parallel workers (deterministic sharding)")
    run.add_argument("--sched-jobs", type=int, default=None,
                     help="threads pricing each DP frontier inside every "
                          "worker (artifacts are identical at any value)")
    run.add_argument("--cache-dir", default=None,
                     help="persistent cache root (shared by workers)")
    run.add_argument("--artifact", default="dse_sweep.json",
                     help="sweep artifact path")
    run.add_argument("--resume", action="store_true",
                     help="skip tasks already ok in the artifact")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-task wall-clock limit (seconds)")
    run.add_argument("--retries", type=int, default=1,
                     help="extra attempts for transient task failures")
    run.add_argument("--no-isolation", action="store_true",
                     help="run tasks in-process (debugging)")
    run.set_defaults(func=_cmd_run)

    for name, func, help_text in (
        ("stat", _cmd_stat, "summarize a cache root"),
        ("ls", _cmd_ls, "list cache entries"),
        ("gc", _cmd_gc, "evict invalid/stale entries"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--cache-dir", default=None,
                         help=f"cache root (default: ${CACHE_ENV})")
        cmd.set_defaults(func=func)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-listing; redirect
        # stdout at the descriptor level so interpreter shutdown does
        # not trip over the dead pipe again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
