"""Ablation benches for the design choices DESIGN.md calls out.

* hybrid r_hyb sweep — the Min-KS <-> Hoisting trade-off curve;
* scheduler group-size cap vs schedule quality and search time;
* temporal streaming on/off;
* PE-granularity allocation sanity (more PEs never hurt).
"""

import pytest

from repro.fhe.params import parameter_set
from repro.hw.config import CROPHE_36
from repro.sched.scheduler import Scheduler, SchedulerConfig
from repro.sim.engine import SimulationEngine
from repro.workloads import build_bootstrapping
from repro.workloads.base import WorkloadOptions

PARAMS = parameter_set("SHARP")
HW = CROPHE_36.with_sram_mb(45.0)


def _segment_time(options, hw=HW, config=None):
    wl = build_bootstrapping(PARAMS, options)
    seg = wl.segment("coeff_to_slot0")
    sched = Scheduler(seg.graph, hw, config).schedule()
    return SimulationEngine(hw).run(sched).total_seconds


class TestHybridSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        out = {}
        for r_hyb in (1, 2, 4, 8):
            out[r_hyb] = _segment_time(
                WorkloadOptions(rotation_strategy="hybrid", r_hyb=r_hyb)
            )
        out["plain"] = _segment_time(
            WorkloadOptions(rotation_strategy="plain")
        )
        return out

    def test_runs(self, benchmark, sweep):
        benchmark.pedantic(
            lambda: _segment_time(
                WorkloadOptions(rotation_strategy="hybrid", r_hyb=4)
            ),
            iterations=1, rounds=1,
        )

    def test_some_hybrid_beats_plain(self, sweep):
        best = min(v for k, v in sweep.items() if k != "plain")
        assert best < sweep["plain"]

    def test_endpoints_bracket_middle(self, sweep):
        """The best r_hyb is never *worse* than both pure endpoints."""
        best_mid = min(sweep[2], sweep[4])
        assert best_mid <= max(sweep[1], sweep[8]) * 1.05


class TestGroupSizeCap:
    def test_larger_windows_do_not_hurt(self, benchmark):
        def run(size):
            return _segment_time(
                WorkloadOptions(rotation_strategy="hybrid", r_hyb=4),
                config=SchedulerConfig(max_group_size=size),
            )

        small = benchmark.pedantic(lambda: run(2), iterations=1, rounds=1)
        large = run(7)
        assert large <= small * 1.02


class TestTemporalStreaming:
    def test_streaming_reduces_time(self):
        on = _segment_time(
            WorkloadOptions(rotation_strategy="hybrid", r_hyb=4),
            config=SchedulerConfig(temporal_streaming=True),
        )
        off = _segment_time(
            WorkloadOptions(rotation_strategy="hybrid", r_hyb=4),
            config=SchedulerConfig(temporal_streaming=False),
        )
        assert on <= off * 1.02


class TestPeScaling:
    def test_more_pes_not_slower(self):
        few = _segment_time(
            WorkloadOptions(rotation_strategy="hybrid", r_hyb=4),
            hw=HW.scaled_pes(32),
        )
        many = _segment_time(
            WorkloadOptions(rotation_strategy="hybrid", r_hyb=4),
            hw=HW.scaled_pes(128),
        )
        assert many <= few * 1.05
