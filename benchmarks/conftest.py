"""Benchmark harness configuration.

Each ``test_*`` module regenerates one of the paper's tables or figures
and asserts the paper's qualitative *shape* (who wins, roughly by how
much, where trends point).  ``pytest-benchmark`` wraps the expensive
evaluation pipeline so run times are also tracked.

The full Figure 9/10 sweeps take tens of minutes; the benchmark defaults
evaluate a representative subset (the SHARP and ARK pairings with the
bootstrapping + ResNet-20 workloads).  Set ``REPRO_FULL_BENCH=1`` to run
everything.
"""

import os

import pytest

FULL = bool(os.environ.get("REPRO_FULL_BENCH"))


@pytest.fixture(scope="session")
def full_sweep():
    return FULL
