"""Benchmark: Table II area/power breakdown matches the paper."""

import pytest

from repro.experiments.table2 import PAPER_TABLE2, compare_with_paper, table2


def test_table2(benchmark):
    rows = benchmark(compare_with_paper)
    for name, area, paper_area, power, paper_power in rows:
        assert area == pytest.approx(paper_area, rel=0.01), name
        assert power == pytest.approx(paper_power, rel=0.01), name


def test_total_area_matches_table1(benchmark):
    report = benchmark(table2)
    assert report.total_area_mm2 == pytest.approx(251.1, rel=0.01)
    assert report.total_power_w == pytest.approx(181.1, rel=0.01)
