"""Benchmark: Table IV resource utilization — shape assertions.

Paper expectations on ResNet-20:

* CROPHE's flexible homogeneous array reaches materially higher PE
  utilization than the specialized baselines (57-77% vs ~40% effective);
* CROPHE-p pushes PE utilization higher still;
* DRAM bandwidth utilization stays in the same regime as the baselines
  (both the data volume and the execution time shrink together).
"""

import pytest

from repro.experiments.table4 import table4


@pytest.fixture(scope="module")
def rows():
    return table4()


def test_table4_runs(benchmark):
    result = benchmark.pedantic(table4, iterations=1, rounds=1)
    assert len(result) == 6


class TestShape:
    def _find(self, rows, label):
        return next(r for r in rows if r.design == label)

    @pytest.mark.parametrize("pair,suffix", [("ARK", "64"), ("SHARP", "36")])
    def test_crophe_pe_utilization_higher(self, rows, pair, suffix):
        base = self._find(rows, f"{pair}+MAD")
        crophe = self._find(rows, f"CROPHE-{suffix}")
        assert crophe.pe > base.pe

    @pytest.mark.parametrize("suffix", ["64", "36"])
    def test_crophe_p_highest_pe_util(self, rows, suffix):
        crophe = self._find(rows, f"CROPHE-{suffix}")
        p = self._find(rows, f"CROPHE-p-{suffix}")
        assert p.pe >= crophe.pe * 0.999

    def test_baseline_noc_omitted(self, rows):
        for r in rows:
            if r.design.endswith("+MAD"):
                assert r.noc is None
            else:
                assert r.noc is not None

    def test_dram_utilization_same_regime(self, rows):
        """Neither design should idle or saturate DRAM exclusively."""
        for r in rows:
            assert 0.01 < r.dram_bw <= 1.0, r.design

    def test_utilizations_are_fractions(self, rows):
        for r in rows:
            for v in (r.pe, r.sram_bw, r.dram_bw):
                assert 0.0 <= v <= 1.0
