"""Benchmark: Figure 10 SRAM sweep — shape assertions.

Paper expectations:

* both designs slow down as the buffer shrinks, but CROPHE keeps (or
  grows) its advantage over most of the sweep;
* the headline claim: CROPHE-p-36 at the smallest SRAM still beats
  SHARP+MAD at the full 180 MB on ResNet-20.
"""

import pytest

from repro.experiments.fig10 import fig10


def _cells(full):
    workloads = (
        ("bootstrapping", "helr", "resnet20", "resnet110")
        if full else ("bootstrapping", "resnet20")
    )
    return fig10(baselines=("SHARP",), workloads=workloads)


@pytest.fixture(scope="module")
def cells(full_sweep):
    return _cells(full_sweep)


def test_fig10_runs(benchmark, full_sweep):
    result = benchmark.pedantic(
        lambda: _cells(full_sweep), iterations=1, rounds=1
    )
    assert result


class TestShape:
    def test_everyone_slows_with_less_sram(self, cells):
        by_wl = {}
        for c in cells:
            by_wl.setdefault(c.workload, []).append(c)
        for workload, group in by_wl.items():
            group.sort(key=lambda c: -c.sram_mb)
            for prev, cur in zip(group, group[1:]):
                assert cur.baseline_ms >= prev.baseline_ms * 0.98
                assert cur.crophe_ms >= prev.crophe_ms * 0.98

    def test_crophe_always_ahead(self, cells):
        for c in cells:
            assert c.speedup > 1.0, (c.workload, c.sram_mb, c.speedup)

    def test_advantage_survives_shrinking(self, cells):
        """At the smallest buffer CROPHE keeps a healthy margin."""
        smallest = min(c.sram_mb for c in cells)
        for c in cells:
            if c.sram_mb == smallest:
                assert c.speedup > 1.2, (c.workload, c.speedup)

    def test_small_sram_crophe_p_beats_full_sram_baseline(self, cells):
        """Figure 10(c): CROPHE-p-36 @45MB faster than SHARP+MAD @180MB."""
        rn = [c for c in cells if c.workload == "resnet20"]
        full = max(rn, key=lambda c: c.sram_mb)
        tiny = min(rn, key=lambda c: c.sram_mb)
        assert tiny.crophe_p_ms < full.baseline_ms
