"""Benchmark: Figure 9 overall comparison — shape assertions.

Paper expectations encoded here:

* CROPHE beats every baseline+MAD on every workload (1.15x-3.6x range);
* CROPHE-p is at least as fast as CROPHE;
* CROPHE hardware running MAD does *not* beat the tuned baselines by
  much (the co-design message: hardware alone is not enough).
"""

import pytest

from repro.experiments.fig9 import design_points, fig9


def _cells(full):
    if full:
        return fig9()
    return fig9(baselines=("SHARP", "ARK"),
                workloads=("bootstrapping", "resnet20"))


@pytest.fixture(scope="module")
def cells(full_sweep):
    return _cells(full_sweep)


def test_fig9_runs(benchmark, full_sweep):
    result = benchmark.pedantic(
        lambda: _cells(full_sweep), iterations=1, rounds=1
    )
    assert result


class TestShape:
    def test_crophe_beats_baselines(self, cells):
        for c in cells:
            if c.design.startswith("CROPHE-") and "MAD" not in c.design \
                    and not c.design.startswith("CROPHE-p"):
                assert c.speedup > 1.0, (c.baseline, c.workload, c.speedup)

    def test_speedup_factors_roughly_match_paper(self, cells):
        """Paper range: 1.15x (SHARP/HELR) to 3.6x (BTS/boot); allow a
        generous band around it for the simulated substrate."""
        for c in cells:
            if c.design.startswith("CROPHE-") and "MAD" not in c.design:
                assert 1.0 < c.speedup < 8.0, (
                    c.baseline, c.workload, c.design, c.speedup
                )

    def test_crophe_p_at_least_as_fast(self, cells):
        by_key = {(c.baseline, c.workload, c.design): c for c in cells}
        for (b, w, d), c in by_key.items():
            if d.startswith("CROPHE-p"):
                plain = next(
                    v for (b2, w2, d2), v in by_key.items()
                    if b2 == b and w2 == w
                    and d2.startswith("CROPHE-") and "p" not in d2
                    and "MAD" not in d2
                )
                assert c.speedup >= plain.speedup * 0.999

    def test_crophe_hw_with_mad_not_a_win(self, cells):
        """Hardware without the dataflow gives far less than the
        co-design: CROPHE-hw+MAD must trail full CROPHE substantially
        (the paper's point that the two halves must be applied jointly).
        """
        by_key = {(c.baseline, c.workload, c.design): c for c in cells}
        for (b, w, d), c in by_key.items():
            if d != "CROPHE-hw+MAD":
                continue
            full = next(
                v for (b2, w2, d2), v in by_key.items()
                if b2 == b and w2 == w and d2.startswith("CROPHE-")
                and "MAD" not in d2 and not d2.startswith("CROPHE-p")
            )
            assert c.speedup < full.speedup * 0.9, (b, w, c.speedup)
            assert c.speedup < 1.6, (b, w, c.speedup)

    def test_baseline_reference_is_unity(self, cells):
        for c in cells:
            if c.design.endswith("+MAD") and c.design.startswith(c.baseline):
                assert c.speedup == pytest.approx(1.0)
