"""Benchmark: Table III parameter sets match the paper exactly."""

from repro.experiments.table3 import security_check, table3


def test_table3(benchmark):
    data = benchmark(table3)
    assert data["BTS"] == [17, 39, 19, 2, 20]
    assert data["ARK"] == [16, 23, 15, 4, 6]
    assert data["SHARP"] == [16, 35, 27, 3, 12]
    assert data["CraterLake"] == [16, 59, 51, 1, 60]


def test_security_plausible(benchmark):
    estimates = benchmark(security_check)
    # All Table III sets claim 128-bit security; the rule-of-thumb
    # estimate should land in the right ballpark for every set.
    for name, bits in estimates.items():
        assert bits > 60, (name, bits)
