"""Benchmark: Figure 11 optimization breakdown — shape assertions.

Paper expectations at reduced SRAM:

* MAD on the CROPHE hardware does not beat the tuned baseline;
* the basic cross-operator framework ("Base") already improves on MAD
  substantially, with lower SRAM/DRAM traffic;
* hybrid rotation contributes more than NTT decomposition;
* the full CROPHE point is the best of the ladder;
* DRAM traffic decreases monotonically down the MAD -> Base -> CROPHE
  ladder.
"""

import pytest

from repro.experiments.fig11 import LADDER, fig11


def _points(full):
    pairings = ("ARK", "SHARP") if full else ("SHARP",)
    return fig11(pairings=pairings)


@pytest.fixture(scope="module")
def points(full_sweep):
    return _points(full_sweep)


def test_fig11_runs(benchmark, full_sweep):
    result = benchmark.pedantic(
        lambda: _points(full_sweep), iterations=1, rounds=1
    )
    assert len(result) % len(LADDER) == 0


class TestShape:
    def _by_variant(self, points, config):
        return {p.variant: p for p in points if p.config == config}

    def test_ladder_monotone_speedup(self, points):
        for config in {p.config for p in points}:
            v = self._by_variant(points, config)
            assert v["MAD"].speedup <= v["Base"].speedup * 1.02
            assert v["Base"].speedup <= v["CROPHE"].speedup * 1.02
            assert v["+HybRot"].speedup <= v["CROPHE"].speedup * 1.02

    def test_mad_on_crophe_hw_is_no_win(self, points):
        for config in {p.config for p in points}:
            v = self._by_variant(points, config)
            assert v["MAD"].speedup <= 1.1

    def test_hybrot_contributes_more_than_nttdec(self, points):
        """Section VII-D: hybrid rotation's benefit exceeds NTTDec's."""
        for config in {p.config for p in points}:
            v = self._by_variant(points, config)
            gain_hyb = v["+HybRot"].speedup / v["Base"].speedup
            gain_ntt = v["+NTTDec"].speedup / v["Base"].speedup
            assert gain_hyb >= gain_ntt

    def test_combined_is_best(self, points):
        for config in {p.config for p in points}:
            v = self._by_variant(points, config)
            best = max(p.speedup for p in v.values())
            assert v["CROPHE"].speedup == pytest.approx(best, rel=0.02)

    def test_dram_traffic_drops_along_ladder(self, points):
        for config in {p.config for p in points}:
            v = self._by_variant(points, config)
            assert v["Base"].dram_gb < v["MAD"].dram_gb
            assert v["CROPHE"].dram_gb <= v["Base"].dram_gb
