"""Benchmark: regenerate Table I and check it against the paper."""

from repro.experiments.table1 import ROW_LABELS, TABLE1_COLUMNS, table1


def test_table1(benchmark):
    data = benchmark(table1)
    # Paper values (word bits, frequency, lanes, PEs, DRAM, SRAM MB).
    assert data["BTS"][:2] == [64, 1.2]
    assert data["ARK"][0] == 64
    assert data["SHARP"][0] == 36
    assert data["CL+"][0] == 28
    assert data["CROPHE-64"][:4] == [64, 1.2, 256, 64]
    assert data["CROPHE-36"][:4] == [36, 1.2, 256, 128]
    # All designs share the 1 TB/s HBM budget.
    dram_row = ROW_LABELS.index("DRAM bandwidth (TB/s)")
    assert all(col[dram_row] == 1.0 for col in data.values())
    # CROPHE variants sized to similar area as their baselines.
    area_row = ROW_LABELS.index("Area (mm2)")
    assert abs(data["CROPHE-64"][area_row] - data["BTS"][area_row]) < 60
    assert data["CROPHE-36"][area_row] < 260
