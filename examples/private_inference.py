"""Private inference: an encrypted linear classifier, end to end.

The motivating application of the paper's introduction: a client
encrypts its data, the server evaluates a model on the ciphertext, and
only the client can decrypt the score.  Here a small linear classifier
(matrix-vector product + bias + polynomial activation) runs under CKKS
using BSGS PtMatVecMult (Algorithm 1), then the same workload is
evaluated on the CROPHE accelerator model at ResNet scale.

Run with::

    python examples/private_inference.py
"""

import numpy as np

from repro.fhe import CKKSContext
from repro.fhe import ops
from repro.fhe.bsgs import pt_mat_vec_mult
from repro.fhe.params import make_concrete_params, parameter_set
from repro.experiments.common import DesignPoint, evaluate_workload
from repro.baselines.accelerators import SHARP
from repro.hw.config import CROPHE_36


def encrypted_classifier() -> None:
    print("=== Encrypted linear classifier (functional) ===")
    params = make_concrete_params(log_n=5, max_level=4, alpha=2)
    ctx = CKKSContext(params, seed=7)
    n = params.slots
    rng = np.random.default_rng(0)

    # Server-side model: weights W, bias b, activation x -> x^2 (the
    # simplest polynomial activation used in CKKS inference papers).
    weights = rng.normal(size=(n, n)) / np.sqrt(n)
    bias = rng.normal(size=n) * 0.1

    # Client: encrypt the feature vector.
    features = rng.uniform(-1, 1, n)
    ct = ctx.encrypt(ctx.encode(features))

    # Server: W @ x via BSGS with hybrid rotations, then + b, then square.
    ct = pt_mat_vec_mult(ctx, ct, weights, rotation_strategy="hybrid", r_hyb=2)
    ct = ops.add_plain(ct, ctx.encode(bias, level=ct.level, scale=ct.scale))
    ct = ops.rescale(ctx, ops.square(ctx, ct))

    # Client: decrypt the scores.
    got = ctx.decrypt_decode(ct, n).real
    want = (weights @ features + bias) ** 2
    print(f"  features         : {n}")
    print(f"  max |error|      : {np.max(np.abs(got - want)):.2e}")
    print(f"  levels consumed  : {params.max_level - ct.level}")


def accelerator_projection() -> None:
    print("\n=== ResNet-20 inference on the accelerator model ===")
    params = parameter_set("SHARP")
    baseline = evaluate_workload(
        DesignPoint("SHARP+MAD", SHARP, dataflow="mad"), "resnet20", params
    )
    crophe = evaluate_workload(
        DesignPoint("CROPHE-36", CROPHE_36), "resnet20", params
    )
    print(f"  SHARP + MAD      : {baseline.ms:8.1f} ms / image")
    print(f"  CROPHE-36        : {crophe.ms:8.1f} ms / image")
    print(f"  speedup          : {baseline.seconds / crophe.seconds:.2f}x")
    print(f"  DRAM traffic     : {baseline.traffic.dram_bytes / 2**30:.1f} GB"
          f" -> {crophe.traffic.dram_bytes / 2**30:.1f} GB")


if __name__ == "__main__":
    encrypted_classifier()
    accelerator_projection()
