"""Encrypted logistic-regression training step (the HELR workload).

Trains one gradient-descent step of a logistic regression model on
encrypted data, mirroring the structure of HELR [24]: encrypted inner
products via rotate-and-sum, a polynomial sigmoid, and a weight update —
then projects the full HELR-1024 iteration (including bootstrapping)
onto the CROPHE-64 accelerator model.

Run with::

    python examples/encrypted_logreg.py
"""

import numpy as np

from repro.fhe import CKKSContext
from repro.fhe import ops
from repro.fhe.params import make_concrete_params, parameter_set
from repro.baselines.accelerators import ARK
from repro.experiments.common import DesignPoint, evaluate_workload
from repro.hw.config import CROPHE_64


def sigmoid_poly(ctx, ct):
    """Degree-3 least-squares sigmoid on [-4, 4]: 0.5 + 0.197x - 0.004x^3."""
    x3 = ops.rescale(ctx, ops.square(ctx, ct))
    ct_down = ops.level_down(ct, x3.level)
    x3 = ops.rescale(ctx, ops.multiply(ctx, x3, ct_down))
    x3 = ops.rescale(ctx, ops.mul_scalar(ctx, x3, -0.004))
    lin = ops.rescale(ctx, ops.mul_scalar(ctx, ct, 0.197))
    lin = ops.level_down(lin, x3.level)
    lin.scale = x3.scale
    out = ops.add(x3, lin)
    return ops.add_scalar(ctx, out, 0.5)


def encrypted_gradient_step() -> None:
    print("=== One encrypted logistic-regression step (functional) ===")
    params = make_concrete_params(log_n=5, max_level=8, alpha=3)
    ctx = CKKSContext(params, seed=3)
    n = params.slots
    rng = np.random.default_rng(1)

    # One packed sample per slot block; tiny demo model.
    x = rng.uniform(-1, 1, n)
    w = rng.uniform(-0.5, 0.5, n)
    label = 1.0

    ct_x = ctx.encrypt(ctx.encode(x))
    ct_w = ctx.encrypt(ctx.encode(w))

    # margin = <w, x> broadcast via rotate-and-sum.
    prod = ops.rescale(ctx, ops.multiply(ctx, ct_w, ct_x))
    acc = prod
    steps = int(np.log2(n))
    for s in range(steps):
        acc = ops.add(acc, ops.rotate(ctx, acc, 1 << s))
    # Every slot of `acc` now holds <w, x>.
    pred = sigmoid_poly(ctx, acc)
    got = ctx.decrypt_decode(pred, 1).real[0]
    margin = float(np.dot(w, x))
    want = 0.5 + 0.197 * margin - 0.004 * margin ** 3
    print(f"  margin           : {margin:+.4f}")
    print(f"  sigmoid(margin)  : {got:+.4f} (expected {want:+.4f})")
    print(f"  |error|          : {abs(got - want):.2e}")

    # Gradient step: w <- w + lr * (label - pred) * x.
    lr = 0.1
    err = ops.sub(
        ops.add_scalar(ctx, ops.negate(pred), label),
        ctx.encrypt(ctx.encode([0.0] * n, level=pred.level,
                               scale=pred.scale)),
    )
    ct_x_down = ops.level_down(ct_x, err.level)
    ct_x_down.scale = err.scale
    grad = ops.rescale(ctx, ops.multiply(ctx, err, ct_x_down))
    grad = ops.rescale(ctx, ops.mul_scalar(ctx, grad, lr))
    print(f"  updated-weight ct at level {grad.level}")


def accelerator_projection() -> None:
    print("\n=== HELR-1024 iteration on the accelerator model ===")
    params = parameter_set("ARK")
    base = evaluate_workload(
        DesignPoint("ARK+MAD", ARK, dataflow="mad"), "helr", params
    )
    crophe = evaluate_workload(
        DesignPoint("CROPHE-64", CROPHE_64), "helr", params
    )
    crophe_p = evaluate_workload(
        DesignPoint("CROPHE-p-64", CROPHE_64, clusters=4), "helr", params
    )
    print(f"  ARK + MAD        : {base.ms:8.2f} ms / iteration")
    print(f"  CROPHE-64        : {crophe.ms:8.2f} ms ({base.seconds/crophe.seconds:.2f}x)")
    print(f"  CROPHE-p-64      : {crophe_p.ms:8.2f} ms ({base.seconds/crophe_p.seconds:.2f}x)")


if __name__ == "__main__":
    encrypted_gradient_step()
    accelerator_projection()
