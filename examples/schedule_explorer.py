"""Schedule explorer: inspect the dataflow CROPHE discovers.

Builds one CoeffToSlot stage (the HRot-heavy core of bootstrapping) at
paper-scale parameters and prints, for each configuration knob, what the
scheduler found: group compositions, buffer footprints, traffic, and how
the hybrid-rotation parameter trades evaluation keys against ModUps —
the Figure 6/8 story, reproduced interactively.

Run with::

    python examples/schedule_explorer.py
"""

from repro.fhe.params import parameter_set
from repro.fhe.rotation import hybrid_cost_summary
from repro.hw.config import CROPHE_36
from repro.ir.builders import GraphBuilder
from repro.sched.scheduler import Scheduler
from repro.sim.engine import SimulationEngine

PARAMS = parameter_set("SHARP")
HW = CROPHE_36.with_sram_mb(45.0)
N1, N2 = 8, 4


def build_transform(strategy: str, r_hyb: int = 4, ntt_split=None):
    b = GraphBuilder(PARAMS, ntt_split=ntt_split)
    ct = b.input_ciphertext("in", PARAMS.max_level)
    b.bsgs_matvec(ct, N1, N2, strategy=strategy, r_hyb=r_hyb, tag="c2s")
    return b.graph


def explore(strategy: str, r_hyb: int = 4, ntt_split=None) -> None:
    graph = build_transform(strategy, r_hyb, ntt_split)
    scheduler = Scheduler(graph, HW, n_split=ntt_split)
    schedule = scheduler.schedule()
    result = SimulationEngine(HW).run(schedule)
    split = "four-step" if ntt_split else "monolithic"
    print(f"\n--- {strategy} (r_hyb={r_hyb}, NTT {split}) ---")
    print(f"  operators      : {graph.num_operators}")
    print(f"  spatial groups : {len(schedule.steps)}")
    print(f"  simulated time : {result.total_ms:.3f} ms")
    print(f"  DRAM traffic   : {result.traffic.dram_bytes / 2**20:.0f} MB")
    print(f"  NoC traffic    : {result.traffic.noc_bytes / 2**20:.0f} MB")
    biggest = max(schedule.steps, key=lambda s: len(s.plan.ops))
    kinds = ", ".join(op.kind.value for op in biggest.plan.ops)
    print(f"  largest group  : [{kinds}]")
    buf = max(s.plan.metrics.buffer_bytes for s in schedule.steps)
    print(f"  peak group buf : {buf / 2**20:.2f} MB "
          f"(of {HW.sram_capacity_mb:.0f} MB SRAM)")


def hybrid_tradeoff_table() -> None:
    print("\n--- Hybrid rotation trade-off (Section V-C formulas) ---")
    print(f"  {'r_hyb':>6s}{'ModUps':>8s}{'ModDowns':>10s}{'evks':>6s}")
    for r_hyb in (1, 2, 4, 8):
        s = hybrid_cost_summary(N1, r_hyb)
        print(f"  {r_hyb:6d}{s['mod_ups']:8d}{s['mod_downs']:10d}"
              f"{s['distinct_evks']:6d}")


if __name__ == "__main__":
    print(f"CoeffToSlot stage: BSGS {N1}x{N2}, params={PARAMS.name} "
          f"(logN={PARAMS.log_n}, L={PARAMS.max_level})")
    hybrid_tradeoff_table()
    explore("plain")
    explore("min-ks")
    explore("hoisting")
    explore("hybrid", r_hyb=4)
    explore("hybrid", r_hyb=4, ntt_split=(256, 256))
