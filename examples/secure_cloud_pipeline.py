"""Secure cloud pipeline: serialization + noise budgeting end to end.

Plays out the deployment story the paper's introduction motivates: a
client keeps the secret key, ships serialized ciphertexts and public
evaluation keys to a cloud worker, the worker computes on the encrypted
payload (without any key material that could decrypt), ships results
back, and the client decrypts.  A noise-budget estimate is checked
against the measured error at each hop.

Run with::

    python examples/secure_cloud_pipeline.py
"""

import io

import numpy as np

from repro.fhe import CKKSContext, ops
from repro.fhe.noise import NoiseEstimator, measure_noise_bits
from repro.fhe.params import make_concrete_params
from repro.fhe.polyeval import chebyshev_coefficients, chebyshev_eval
from repro.fhe.serialize import (
    ciphertext_bytes,
    ciphertext_from_bytes,
)


def client_prepare(ctx, values):
    """Client side: encrypt and serialize the payload."""
    ct = ctx.encrypt(ctx.encode(values))
    blob = ciphertext_bytes(ct)
    print(f"  payload size     : {len(blob) / 1024:.1f} kB "
          f"({len(values)} values)")
    return blob


def cloud_compute(ctx, blob):
    """Cloud side: evaluate tanh(x) on the encrypted payload.

    The cloud uses only public operations (the evaluation keys are
    fetched from the context's public caches in a real deployment).
    """
    ct = ciphertext_from_bytes(blob)
    coeffs = chebyshev_coefficients(np.tanh, degree=7)
    result = chebyshev_eval(ctx, ct, coeffs)
    return ciphertext_bytes(result)


def main() -> None:
    params = make_concrete_params(log_n=5, max_level=12, alpha=3)
    ctx = CKKSContext(params, seed=2026)
    n = params.slots
    rng = np.random.default_rng(0)
    values = rng.uniform(-0.9, 0.9, n)

    print("=== Client: encrypt + serialize ===")
    blob = client_prepare(ctx, values)

    print("=== Cloud: evaluate tanh homomorphically ===")
    result_blob = cloud_compute(ctx, blob)
    print(f"  result size      : {len(result_blob) / 1024:.1f} kB")

    print("=== Client: decrypt + verify ===")
    result = ciphertext_from_bytes(result_blob)
    got = ctx.decrypt_decode(result, n).real
    want = np.tanh(values)
    print(f"  levels consumed  : {params.max_level - result.level}")
    print(f"  max |error|      : {np.max(np.abs(got - want)):.2e}")

    print("=== Noise accounting ===")
    est = NoiseEstimator(params)
    fresh = est.fresh()
    measured_bits = measure_noise_bits(ctx, result, want)
    print(f"  fresh estimate   : 2^{fresh.log_noise:.1f}")
    print(f"  measured (end)   : 2^{measured_bits:.1f}"
          f" (scale 2^{np.log2(result.scale):.1f})")
    print(f"  headroom         : {np.log2(result.scale) - measured_bits:.1f}"
          " bits")


if __name__ == "__main__":
    main()
