"""Quickstart: encrypt, compute, and schedule with the CROPHE stack.

Runs in a few seconds::

    python examples/quickstart.py

Part 1 uses the functional CKKS library on small, concrete parameters:
encrypt two vectors, multiply and rotate homomorphically, decrypt.

Part 2 lowers the same HMult to an operator graph at accelerator-scale
parameters, runs the CROPHE scheduler, and simulates it on the CROPHE-64
configuration, printing the discovered dataflow groups.
"""

import numpy as np

from repro.fhe import CKKSContext
from repro.fhe import ops
from repro.fhe.params import make_concrete_params, parameter_set
from repro.hw.config import CROPHE_64
from repro.ir.builders import GraphBuilder
from repro.sched.scheduler import Scheduler
from repro.sim.engine import SimulationEngine


def functional_demo() -> None:
    print("=== Part 1: functional CKKS (N=64, 4 levels) ===")
    params = make_concrete_params(log_n=6, max_level=3, alpha=2)
    ctx = CKKSContext(params, seed=42)
    slots = params.slots

    x = np.linspace(-1.0, 1.0, slots)
    y = np.cos(x)
    ct_x = ctx.encrypt(ctx.encode(x))
    ct_y = ctx.encrypt(ctx.encode(y))

    product = ops.rescale(ctx, ops.multiply(ctx, ct_x, ct_y))
    rotated = ops.rotate(ctx, product, 3)
    got = ctx.decrypt_decode(rotated, slots).real
    want = np.roll(x * y, -3)
    print(f"  slots            : {slots}")
    print(f"  max |error|      : {np.max(np.abs(got - want)):.2e}")
    print(f"  level after mult : {product.level} (started at {params.max_level})")


def scheduling_demo() -> None:
    print("\n=== Part 2: scheduling an HMult on CROPHE-64 ===")
    params = parameter_set("ARK")  # N=2^16, L=23 (paper Table III)
    builder = GraphBuilder(params)
    builder.hmult(
        builder.input_ciphertext("x", params.max_level),
        builder.input_ciphertext("y", params.max_level),
    )
    graph = builder.graph
    print(f"  operator graph   : {graph.num_operators} operators")

    scheduler = Scheduler(graph, CROPHE_64)
    schedule = scheduler.schedule()
    print(f"  schedule         : {len(schedule.steps)} spatial groups")
    print(f"  search time      : {scheduler.stats['search_seconds']:.2f}s")

    result = SimulationEngine(CROPHE_64).run(schedule)
    print(f"  simulated time   : {result.total_ms:.3f} ms")
    print(f"  DRAM traffic     : {result.traffic.dram_bytes / 2**20:.1f} MB")
    print(f"  PE utilization   : {result.utilization.pe:.1%}")

    print("  first groups:")
    for i, step in enumerate(schedule.steps[:5]):
        kinds = ", ".join(op.kind.value for op in step.plan.ops)
        print(f"    group {i}: [{kinds}]")


if __name__ == "__main__":
    functional_demo()
    scheduling_demo()
